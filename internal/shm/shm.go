// Package shm implements the intra-node shared-memory buffer through which
// Damaris clients hand datasets to dedicated cores.
//
// In the paper (§III-B, "Shared-memory"): "A large memory buffer is created
// by the dedicated core at start time, with a size chosen by the user. […]
// When a compute core submits new data, it reserves a segment of this
// buffer, then copies its data using the returned pointer". Two reservation
// algorithms are provided, exactly as in the paper:
//
//   - a mutex-based allocator (the Boost.Interprocess default in the
//     original implementation), here a first-fit free list, and
//   - a lock-free allocator for the case where "all clients are expected to
//     write the same amount of data": the buffer is split in as many parts
//     as clients and each client uses its own region.
//
// Within this reproduction, "shared memory" is process memory shared between
// goroutines that model the cores of one SMP node; the visibility and
// lifetime rules are the same as for a mapped segment.
package shm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors returned by allocators.
var (
	// ErrNoSpace is returned when the segment cannot satisfy a reservation.
	ErrNoSpace = errors.New("shm: not enough free space in segment")
	// ErrClosed is returned after the segment has been closed.
	ErrClosed = errors.New("shm: segment closed")
	// ErrBadSize is returned for non-positive reservation sizes.
	ErrBadSize = errors.New("shm: reservation size must be positive")
)

// Block is a reserved region of a segment. The caller copies data into
// Data() and later releases the block (normally done by the dedicated core
// once the data has been persisted).
type Block struct {
	seg    *Segment
	offset int64
	size   int64
	freed  atomic.Bool
}

// Data returns the writable byte slice backing the block.
func (b *Block) Data() []byte { return b.seg.buf[b.offset : b.offset+b.size] }

// Offset returns the block's offset within the segment.
func (b *Block) Offset() int64 { return b.offset }

// Size returns the block's size in bytes.
func (b *Block) Size() int64 { return b.size }

// Release returns the block to its allocator. Releasing twice is a no-op.
func (b *Block) Release() {
	if b.freed.CompareAndSwap(false, true) {
		b.seg.alloc.free(b)
		b.seg.releases.Add(1)
	}
}

// Released reports whether the block has been returned to its allocator.
// The persistence pipeline's durability invariant — no chunk is released
// before its iteration is durably written — is asserted through this.
func (b *Block) Released() bool { return b.freed.Load() }

// Allocator is the reservation strategy used by a Segment.
type Allocator interface {
	// reserve claims size bytes for the given client and returns the offset.
	reserve(client int, size int64) (int64, error)
	// free returns a block's bytes to the allocator.
	free(b *Block)
	// freeBytes reports the bytes currently available (approximate for
	// lock-free allocators).
	freeBytes() int64
	// name identifies the strategy for diagnostics.
	name() string
}

// Segment is a node-local shared buffer with an allocation strategy.
type Segment struct {
	buf      []byte
	alloc    Allocator
	closed   atomic.Bool
	reserves atomic.Int64
	releases atomic.Int64

	mu      sync.Mutex
	waiters []chan struct{}
}

// Option configures segment creation.
type Option func(*options)

type options struct {
	clients  int
	lockfree bool
}

// WithLockFree selects the lock-free partitioned allocator for nclients
// equal-share clients (paper §III-B: used when all clients write the same
// amount of data per iteration).
func WithLockFree(nclients int) Option {
	return func(o *options) {
		o.lockfree = true
		o.clients = nclients
	}
}

// NewSegment creates a shared segment of the given size. By default the
// mutex-based first-fit allocator is used; pass WithLockFree to select the
// partitioned allocator.
func NewSegment(size int64, opts ...Option) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: segment size must be positive, got %d", size)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	s := &Segment{buf: make([]byte, size)}
	if o.lockfree {
		if o.clients <= 0 {
			return nil, fmt.Errorf("shm: lock-free allocator needs at least one client, got %d", o.clients)
		}
		a, err := newPartitionedAllocator(size, o.clients)
		if err != nil {
			return nil, err
		}
		s.alloc = a
	} else {
		s.alloc = newMutexAllocator(size)
	}
	return s, nil
}

// Size returns the total size of the segment in bytes.
func (s *Segment) Size() int64 { return int64(len(s.buf)) }

// FreeBytes returns the bytes currently available for reservation.
func (s *Segment) FreeBytes() int64 { return s.alloc.freeBytes() }

// AllocatorName identifies the reservation strategy.
func (s *Segment) AllocatorName() string { return s.alloc.name() }

// Reserves returns the total number of successful reservations.
func (s *Segment) Reserves() int64 { return s.reserves.Load() }

// Releases returns the total number of block releases.
func (s *Segment) Releases() int64 { return s.releases.Load() }

// Reserve claims size bytes on behalf of client (the client's node-local
// index; only meaningful for the partitioned allocator). It returns
// ErrNoSpace when the segment is full — callers that prefer to block should
// use ReserveWait.
func (s *Segment) Reserve(client int, size int64) (*Block, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if size <= 0 {
		return nil, ErrBadSize
	}
	off, err := s.alloc.reserve(client, size)
	if err != nil {
		return nil, err
	}
	s.reserves.Add(1)
	return &Block{seg: s, offset: off, size: size}, nil
}

// ReserveWait behaves like Reserve but blocks until space becomes available
// (a block is released) or the segment is closed. This models the client
// stalling when the dedicated core has fallen behind — the paper's
// back-pressure regime when I/O cannot keep up with output frequency.
func (s *Segment) ReserveWait(client int, size int64) (*Block, error) {
	for {
		b, err := s.Reserve(client, size)
		if err == nil {
			return b, nil
		}
		if !errors.Is(err, ErrNoSpace) {
			return nil, err
		}
		if size > s.Size() {
			return nil, fmt.Errorf("shm: reservation of %d bytes can never fit segment of %d bytes: %w",
				size, s.Size(), ErrNoSpace)
		}
		ch := make(chan struct{})
		s.mu.Lock()
		s.waiters = append(s.waiters, ch)
		s.mu.Unlock()
		// Re-check after registering to avoid a lost wakeup.
		if b, err := s.Reserve(client, size); err == nil {
			s.notifyAll()
			return b, nil
		} else if !errors.Is(err, ErrNoSpace) {
			return nil, err
		}
		<-ch
		if s.closed.Load() {
			return nil, ErrClosed
		}
	}
}

func (s *Segment) notifyAll() {
	s.mu.Lock()
	ws := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
}

// Close marks the segment closed and wakes all waiters. Outstanding blocks
// remain readable; new reservations fail with ErrClosed.
func (s *Segment) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.notifyAll()
	}
}

// hook used by Block.Release to wake ReserveWait callers.
func (s *Segment) blockReleased() { s.notifyAll() }

// ---------------------------------------------------------------------------
// Mutex-based first-fit allocator (Boost-default analogue).

type span struct {
	off, size int64
}

type mutexAllocator struct {
	mu    sync.Mutex
	spans []span // sorted by offset, coalesced
	avail int64
}

func newMutexAllocator(size int64) *mutexAllocator {
	return &mutexAllocator{spans: []span{{0, size}}, avail: size}
}

func (a *mutexAllocator) name() string { return "mutex-first-fit" }

func (a *mutexAllocator) freeBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.avail
}

func (a *mutexAllocator) reserve(_ int, size int64) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.spans {
		if a.spans[i].size >= size {
			off := a.spans[i].off
			a.spans[i].off += size
			a.spans[i].size -= size
			if a.spans[i].size == 0 {
				a.spans = append(a.spans[:i], a.spans[i+1:]...)
			}
			a.avail -= size
			return off, nil
		}
	}
	return 0, ErrNoSpace
}

func (a *mutexAllocator) free(b *Block) {
	a.mu.Lock()
	// Insert keeping offset order, then coalesce with neighbours.
	i := 0
	for i < len(a.spans) && a.spans[i].off < b.offset {
		i++
	}
	a.spans = append(a.spans, span{})
	copy(a.spans[i+1:], a.spans[i:])
	a.spans[i] = span{b.offset, b.size}
	// Coalesce right.
	if i+1 < len(a.spans) && a.spans[i].off+a.spans[i].size == a.spans[i+1].off {
		a.spans[i].size += a.spans[i+1].size
		a.spans = append(a.spans[:i+1], a.spans[i+2:]...)
	}
	// Coalesce left.
	if i > 0 && a.spans[i-1].off+a.spans[i-1].size == a.spans[i].off {
		a.spans[i-1].size += a.spans[i].size
		a.spans = append(a.spans[:i], a.spans[i+1:]...)
	}
	a.avail += b.size
	a.mu.Unlock()
	b.seg.blockReleased()
}

// ---------------------------------------------------------------------------
// Lock-free partitioned allocator.
//
// The buffer is split into one fixed region per client; each client bumps a
// private cursor (a bump allocator). The region is recycled — cursor reset to
// zero — on the owner's next reservation once every outstanding block has
// been released by the dedicated core. Contract: reservations for a given
// client index are issued by a single goroutine (one compute core = one
// client), which is exactly the Damaris usage; releases may come from any
// goroutine.

type partition struct {
	base, size int64
	cursor     atomic.Int64 // bytes handed out since last reset (owner-written)
	live       atomic.Int64 // outstanding (unreleased) bytes
}

type partitionedAllocator struct {
	parts []partition
}

func newPartitionedAllocator(size int64, clients int) (*partitionedAllocator, error) {
	per := size / int64(clients)
	if per <= 0 {
		return nil, fmt.Errorf("shm: segment of %d bytes too small for %d client partitions", size, clients)
	}
	a := &partitionedAllocator{parts: make([]partition, clients)}
	for i := range a.parts {
		a.parts[i].base = int64(i) * per
		a.parts[i].size = per
	}
	return a, nil
}

func (a *partitionedAllocator) name() string { return "lock-free-partitioned" }

func (a *partitionedAllocator) freeBytes() int64 {
	var total int64
	for i := range a.parts {
		total += a.parts[i].size - a.parts[i].cursor.Load()
	}
	return total
}

func (a *partitionedAllocator) reserve(client int, size int64) (int64, error) {
	if client < 0 || client >= len(a.parts) {
		return 0, fmt.Errorf("shm: client %d out of range for %d partitions", client, len(a.parts))
	}
	p := &a.parts[client]
	// Recycle the region if every previously reserved block has been
	// released. Safe without locks: only the owning goroutine reserves from
	// this partition, and live==0 means no release is still pending.
	if p.live.Load() == 0 && p.cursor.Load() != 0 {
		p.cursor.Store(0)
	}
	cur := p.cursor.Load()
	if cur+size > p.size {
		return 0, ErrNoSpace
	}
	p.cursor.Store(cur + size)
	p.live.Add(size)
	return p.base + cur, nil
}

func (a *partitionedAllocator) free(b *Block) {
	// Locate the owning partition by offset.
	per := a.parts[0].size
	idx := int(b.offset / per)
	if idx >= len(a.parts) {
		idx = len(a.parts) - 1
	}
	a.parts[idx].live.Add(-b.size)
	b.seg.blockReleased()
}
