// Package schedule implements the communication-free data-transfer
// scheduling of §IV-D: "each dedicated core computes an estimation of the
// computation time of an iteration from a first run of the simulation […]
// This time is then divided into as many slots as dedicated cores. Each
// dedicated core then waits for its slot before writing. This avoids access
// contention at the level of the file system."
//
// The scheduler needs no communication: every dedicated core knows only its
// own index, the total number of dedicated cores, and the shared
// compute-interval estimate — all static — so slot starts are globally
// consistent by construction.
package schedule

import (
	"fmt"
	"time"
)

// Clock abstracts time so tests and the simulator can drive the scheduler
// without real sleeping.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// realClock is the wall-clock implementation.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// SlotScheduler assigns each dedicated core a periodic slot within the
// estimated compute interval.
type SlotScheduler struct {
	index    int           // this dedicated core's index among all dedicated cores
	total    int           // total number of dedicated cores
	interval time.Duration // compute-interval estimate between write phases
	epoch    time.Time     // common time origin
	clock    Clock
}

// New creates a scheduler for dedicated core `index` of `total`, with the
// measured compute interval between write phases. All dedicated cores must
// use the same interval and epoch for the slots to interleave.
func New(index, total int, interval time.Duration) (*SlotScheduler, error) {
	return NewWithClock(index, total, interval, realClock{})
}

// NewWithClock is New with an explicit clock (tests, simulation).
func NewWithClock(index, total int, interval time.Duration, clock Clock) (*SlotScheduler, error) {
	if total < 1 {
		return nil, fmt.Errorf("schedule: total dedicated cores %d < 1", total)
	}
	if index < 0 || index >= total {
		return nil, fmt.Errorf("schedule: index %d outside [0,%d)", index, total)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("schedule: non-positive interval %v", interval)
	}
	if clock == nil {
		return nil, fmt.Errorf("schedule: nil clock")
	}
	return &SlotScheduler{
		index:    index,
		total:    total,
		interval: interval,
		epoch:    clock.Now(),
		clock:    clock,
	}, nil
}

// SetEpoch aligns the scheduler's time origin (e.g. to the simulation's
// first iteration boundary shared by all dedicated cores).
func (s *SlotScheduler) SetEpoch(t time.Time) { s.epoch = t }

// SlotWidth returns the duration of one slot.
func (s *SlotScheduler) SlotWidth() time.Duration {
	return s.interval / time.Duration(s.total)
}

// SlotStart returns when this core's slot opens for the given iteration:
// iteration boundaries repeat every interval, and within each interval the
// cores' slots are laid out in index order.
func (s *SlotScheduler) SlotStart(iteration int64) time.Time {
	base := s.epoch.Add(time.Duration(iteration) * s.interval)
	return base.Add(time.Duration(s.index) * s.SlotWidth())
}

// WaitTurn blocks until this core's slot for the iteration opens. If the
// slot has already passed (the dedicated core fell behind), it returns
// immediately — correctness never depends on the schedule.
func (s *SlotScheduler) WaitTurn(iteration int64) {
	start := s.SlotStart(iteration)
	now := s.clock.Now()
	if wait := start.Sub(now); wait > 0 {
		s.clock.Sleep(wait)
	}
}

// BatchSlotWidth returns the combined slot width a batch covering
// iterations [first,last] claims: the batch writes once but stands in for
// last-first+1 per-iteration writes, so it owns that many of this core's
// slots back to back.
func (s *SlotScheduler) BatchSlotWidth(first, last int64) time.Duration {
	if last < first {
		last = first
	}
	return time.Duration(last-first+1) * s.SlotWidth()
}

// WaitTurnBatch blocks until this core's batch-sized slot opens — the
// batch-aware §IV-D composition with write-behind batching. A batch
// spanning [first,last] stands in for last-first+1 per-iteration writes,
// so the span's iterations are re-divided into one batch-sized slot per
// core: slot i opens at the span's start plus i×BatchSlotWidth. When
// sibling cores batch the same span — the steady-backlog case, since all
// cores fall behind the same storage — their batch slots tile the span
// exactly like their per-iteration slots would have (k=1 reduces to
// WaitTurn) and staggered cores never write concurrently. Batching is
// opportunistic, though, so transiently uneven batch sizes can overlap
// slots: like the per-iteration schedule when a core falls behind, the
// slots are a contention heuristic, and correctness never depends on
// them. Like WaitTurn, a slot already in the past returns immediately.
func (s *SlotScheduler) WaitTurnBatch(first, last int64) {
	if last < first {
		first, last = last, first
	}
	start := s.epoch.Add(time.Duration(first) * s.interval).
		Add(time.Duration(s.index) * s.BatchSlotWidth(first, last))
	now := s.clock.Now()
	if wait := start.Sub(now); wait > 0 {
		s.clock.Sleep(wait)
	}
}
