package schedule

import (
	"testing"
	"time"
)

// fakeClock advances only through Sleep.
type fakeClock struct {
	now   time.Time
	slept []time.Duration
}

func (f *fakeClock) Now() time.Time { return f.now }
func (f *fakeClock) Sleep(d time.Duration) {
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		index, total int
		interval     time.Duration
	}{
		{0, 0, time.Second},
		{-1, 4, time.Second},
		{4, 4, time.Second},
		{0, 4, 0},
		{0, 4, -time.Second},
	}
	for i, c := range cases {
		if _, err := New(c.index, c.total, c.interval); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewWithClock(0, 1, time.Second, nil); err == nil {
		t.Error("nil clock should fail")
	}
	if _, err := New(3, 4, time.Second); err != nil {
		t.Error(err)
	}
}

func TestSlotLayout(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	s, err := NewWithClock(2, 4, 100*time.Second, clock)
	if err != nil {
		t.Fatal(err)
	}
	if s.SlotWidth() != 25*time.Second {
		t.Errorf("slot width = %v", s.SlotWidth())
	}
	// Iteration 0: slot 2 opens at epoch + 2*25s.
	want := time.Unix(1050, 0)
	if got := s.SlotStart(0); !got.Equal(want) {
		t.Errorf("SlotStart(0) = %v, want %v", got, want)
	}
	// Iteration 3: epoch + 3*100 + 50.
	want = time.Unix(1000+350, 0)
	if got := s.SlotStart(3); !got.Equal(want) {
		t.Errorf("SlotStart(3) = %v, want %v", got, want)
	}
}

func TestWaitTurnSleepsUntilSlot(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, _ := NewWithClock(1, 2, 60*time.Second, clock)
	s.WaitTurn(0) // slot opens at t=30
	if len(clock.slept) != 1 || clock.slept[0] != 30*time.Second {
		t.Errorf("slept %v, want one 30s sleep", clock.slept)
	}
	if !clock.now.Equal(time.Unix(30, 0)) {
		t.Errorf("now = %v", clock.now)
	}
}

func TestWaitTurnPastSlotReturnsImmediately(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, _ := NewWithClock(0, 2, 60*time.Second, clock)
	clock.now = time.Unix(45, 0) // slot 0 of iteration 0 long gone
	s.WaitTurn(0)
	if len(clock.slept) != 0 {
		t.Errorf("should not sleep for a past slot, slept %v", clock.slept)
	}
}

func TestSlotsDoNotOverlap(t *testing.T) {
	// Across all indexes, slots within an iteration tile the interval.
	const total = 8
	interval := 80 * time.Second
	clock := &fakeClock{now: time.Unix(0, 0)}
	var starts []time.Time
	for idx := 0; idx < total; idx++ {
		s, err := NewWithClock(idx, total, interval, clock)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(time.Unix(0, 0))
		starts = append(starts, s.SlotStart(5))
	}
	for i := 1; i < total; i++ {
		gap := starts[i].Sub(starts[i-1])
		if gap != 10*time.Second {
			t.Errorf("gap %d = %v, want 10s", i, gap)
		}
	}
}

func TestSetEpoch(t *testing.T) {
	clock := &fakeClock{now: time.Unix(500, 0)}
	s, _ := NewWithClock(0, 4, 40*time.Second, clock)
	s.SetEpoch(time.Unix(0, 0))
	if got := s.SlotStart(1); !got.Equal(time.Unix(40, 0)) {
		t.Errorf("SlotStart(1) = %v", got)
	}
}

func TestRealClockSmoke(t *testing.T) {
	s, err := New(0, 1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 of iteration 0 opens at epoch: returns immediately.
	done := make(chan struct{})
	go func() {
		s.WaitTurn(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitTurn hung on real clock")
	}
}

func TestBatchSlotWidth(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, err := NewWithClock(1, 4, 100*time.Second, clock)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.BatchSlotWidth(3, 3); got != 25*time.Second {
		t.Errorf("single-iteration batch width = %v, want one slot", got)
	}
	if got := s.BatchSlotWidth(2, 5); got != 100*time.Second {
		t.Errorf("4-iteration batch width = %v, want 4 slots", got)
	}
	if got := s.BatchSlotWidth(5, 2); got != 25*time.Second {
		t.Errorf("inverted span width = %v, want the single-slot floor", got)
	}
}

func TestWaitTurnBatchTilesBatchSizedSlots(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, err := NewWithClock(2, 4, 100*time.Second, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Batch [1,3] (3 iterations): batch slots are 75s wide; core 2's opens
	// at the span start (iteration 1 = 100s) + 2*75s = 250s.
	s.WaitTurnBatch(1, 3)
	if len(clock.slept) != 1 || clock.slept[0] != 250*time.Second {
		t.Fatalf("slept %v, want one 250s wait", clock.slept)
	}
	// A batch slot already in the past returns immediately.
	clock.slept = nil
	s.WaitTurnBatch(0, 1)
	if len(clock.slept) != 0 {
		t.Fatalf("past batch slot slept %v", clock.slept)
	}
	// Inverted order normalizes to the same span.
	clock.now = time.Unix(0, 0)
	clock.slept = nil
	s.WaitTurnBatch(3, 1)
	if len(clock.slept) != 1 || clock.slept[0] != 250*time.Second {
		t.Fatalf("inverted span slept %v, want one 250s wait", clock.slept)
	}
	// A single-iteration batch is exactly WaitTurn: core 2's slot for
	// iteration 0 opens at 50s.
	clock.now = time.Unix(0, 0)
	clock.slept = nil
	s.WaitTurnBatch(0, 0)
	if len(clock.slept) != 1 || clock.slept[0] != 50*time.Second {
		t.Fatalf("single-iteration batch slept %v, want one 50s wait", clock.slept)
	}
	// Sibling cores' batch slots over the same span never overlap: core
	// i's slot is [100+i*75, 100+(i+1)*75).
	for i := 0; i < 4; i++ {
		si, err := NewWithClock(i, 4, 100*time.Second, &fakeClock{now: time.Unix(0, 0)})
		if err != nil {
			t.Fatal(err)
		}
		si.SetEpoch(time.Unix(0, 0))
		start := time.Unix(0, 0).Add(100 * time.Second).Add(time.Duration(i) * si.BatchSlotWidth(1, 3))
		if want := time.Unix(int64(100+i*75), 0); !start.Equal(want) {
			t.Fatalf("core %d batch slot opens at %v, want %v", i, start, want)
		}
	}
}
