package schedule

import (
	"testing"
	"time"
)

// fakeClock advances only through Sleep.
type fakeClock struct {
	now   time.Time
	slept []time.Duration
}

func (f *fakeClock) Now() time.Time { return f.now }
func (f *fakeClock) Sleep(d time.Duration) {
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		index, total int
		interval     time.Duration
	}{
		{0, 0, time.Second},
		{-1, 4, time.Second},
		{4, 4, time.Second},
		{0, 4, 0},
		{0, 4, -time.Second},
	}
	for i, c := range cases {
		if _, err := New(c.index, c.total, c.interval); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewWithClock(0, 1, time.Second, nil); err == nil {
		t.Error("nil clock should fail")
	}
	if _, err := New(3, 4, time.Second); err != nil {
		t.Error(err)
	}
}

func TestSlotLayout(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	s, err := NewWithClock(2, 4, 100*time.Second, clock)
	if err != nil {
		t.Fatal(err)
	}
	if s.SlotWidth() != 25*time.Second {
		t.Errorf("slot width = %v", s.SlotWidth())
	}
	// Iteration 0: slot 2 opens at epoch + 2*25s.
	want := time.Unix(1050, 0)
	if got := s.SlotStart(0); !got.Equal(want) {
		t.Errorf("SlotStart(0) = %v, want %v", got, want)
	}
	// Iteration 3: epoch + 3*100 + 50.
	want = time.Unix(1000+350, 0)
	if got := s.SlotStart(3); !got.Equal(want) {
		t.Errorf("SlotStart(3) = %v, want %v", got, want)
	}
}

func TestWaitTurnSleepsUntilSlot(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, _ := NewWithClock(1, 2, 60*time.Second, clock)
	s.WaitTurn(0) // slot opens at t=30
	if len(clock.slept) != 1 || clock.slept[0] != 30*time.Second {
		t.Errorf("slept %v, want one 30s sleep", clock.slept)
	}
	if !clock.now.Equal(time.Unix(30, 0)) {
		t.Errorf("now = %v", clock.now)
	}
}

func TestWaitTurnPastSlotReturnsImmediately(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s, _ := NewWithClock(0, 2, 60*time.Second, clock)
	clock.now = time.Unix(45, 0) // slot 0 of iteration 0 long gone
	s.WaitTurn(0)
	if len(clock.slept) != 0 {
		t.Errorf("should not sleep for a past slot, slept %v", clock.slept)
	}
}

func TestSlotsDoNotOverlap(t *testing.T) {
	// Across all indexes, slots within an iteration tile the interval.
	const total = 8
	interval := 80 * time.Second
	clock := &fakeClock{now: time.Unix(0, 0)}
	var starts []time.Time
	for idx := 0; idx < total; idx++ {
		s, err := NewWithClock(idx, total, interval, clock)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(time.Unix(0, 0))
		starts = append(starts, s.SlotStart(5))
	}
	for i := 1; i < total; i++ {
		gap := starts[i].Sub(starts[i-1])
		if gap != 10*time.Second {
			t.Errorf("gap %d = %v, want 10s", i, gap)
		}
	}
}

func TestSetEpoch(t *testing.T) {
	clock := &fakeClock{now: time.Unix(500, 0)}
	s, _ := NewWithClock(0, 4, 40*time.Second, clock)
	s.SetEpoch(time.Unix(0, 0))
	if got := s.SlotStart(1); !got.Equal(time.Unix(40, 0)) {
		t.Errorf("SlotStart(1) = %v", got)
	}
}

func TestRealClockSmoke(t *testing.T) {
	s, err := New(0, 1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 of iteration 0 opens at epoch: returns immediately.
	done := make(chan struct{})
	go func() {
		s.WaitTurn(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitTurn hung on real clock")
	}
}
