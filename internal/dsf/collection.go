package dsf

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Collection presents a set of DSF files — e.g. everything a Damaris run
// wrote, one file per node per iteration — as a single dataset. This is
// what an analysis or visualization tool opens after a run.
type Collection struct {
	readers []*Reader
	paths   []string
	// index maps a chunk's position across files.
	index []chunkRef
}

type chunkRef struct {
	file  int // index into readers
	chunk int // index within the file
}

// OpenCollection opens every file matching the glob pattern as one
// collection. Matches are sorted by name before opening, so iteration order
// is stable under the damaris persister's naming scheme. To open an
// explicit list of paths instead of a pattern, use OpenFiles.
func OpenCollection(pattern string) (*Collection, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("dsf: collection glob: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("dsf: collection %q matches no files", pattern)
	}
	sort.Strings(paths)
	return OpenFiles(paths)
}

// OpenFiles opens an explicit list of DSF files as a collection.
func OpenFiles(paths []string) (*Collection, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dsf: empty collection")
	}
	c := &Collection{}
	for _, p := range paths {
		r, err := Open(p)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dsf: collection member %s: %w", p, err)
		}
		for i := 0; i < r.NumChunks(); i++ {
			c.index = append(c.index, chunkRef{file: len(c.readers), chunk: i})
		}
		c.readers = append(c.readers, r)
		c.paths = append(c.paths, p)
	}
	return c, nil
}

// Close releases every member file.
func (c *Collection) Close() error {
	var first error
	for _, r := range c.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.readers = nil
	return first
}

// Files lists the member paths in collection order.
func (c *Collection) Files() []string { return append([]string(nil), c.paths...) }

// Len returns the total chunk count across all files.
func (c *Collection) Len() int { return len(c.index) }

// Chunk returns the metadata of the i-th chunk of the collection (a copy,
// like Reader.Chunk).
func (c *Collection) Chunk(i int) (ChunkMeta, error) {
	if i < 0 || i >= len(c.index) {
		return ChunkMeta{}, fmt.Errorf("dsf: collection chunk %d out of range [0,%d)", i, len(c.index))
	}
	ref := c.index[i]
	return copyMeta(c.readers[ref.file].metas[ref.chunk]), nil
}

// ReadChunk returns the decoded payload of the i-th chunk.
func (c *Collection) ReadChunk(i int) ([]byte, error) {
	if i < 0 || i >= len(c.index) {
		return nil, fmt.Errorf("dsf: collection chunk %d out of range [0,%d)", i, len(c.index))
	}
	ref := c.index[i]
	return c.readers[ref.file].ReadChunk(ref.chunk)
}

// Variables lists the distinct variable names present, sorted.
func (c *Collection) Variables() []string {
	seen := make(map[string]bool)
	for _, ref := range c.index {
		seen[c.readers[ref.file].metas[ref.chunk].Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Iterations lists the distinct iterations present, ascending.
func (c *Collection) Iterations() []int64 {
	seen := make(map[int64]bool)
	for _, ref := range c.index {
		seen[c.readers[ref.file].metas[ref.chunk].Iteration] = true
	}
	out := make([]int64, 0, len(seen))
	for it := range seen {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Select returns the collection-level indices of all chunks of one variable
// at one iteration, sorted by source — the set a reassembly needs. The
// sources are captured once during the scan, not re-fetched (with errors
// discarded) on every comparator call.
func (c *Collection) Select(name string, iteration int64) []int {
	var out []int
	var sources []int
	for i, ref := range c.index {
		m := &c.readers[ref.file].metas[ref.chunk]
		if m.Name == name && m.Iteration == iteration {
			out = append(out, i)
			sources = append(sources, m.Source)
		}
	}
	sort.Sort(&bySource{idx: out, src: sources})
	return out
}

// bySource co-sorts selected indices by their captured sources.
type bySource struct {
	idx []int
	src []int
}

func (s *bySource) Len() int           { return len(s.idx) }
func (s *bySource) Less(a, b int) bool { return s.src[a] < s.src[b] }
func (s *bySource) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.src[a], s.src[b] = s.src[b], s.src[a]
}

// Verify checks every chunk of every member file.
func (c *Collection) Verify() error {
	for i, r := range c.readers {
		if err := r.Verify(); err != nil {
			return fmt.Errorf("dsf: collection member %s: %w", c.paths[i], err)
		}
	}
	return nil
}
