// Package dsf implements the Damaris Scientific Format, the self-describing
// chunked file format this reproduction uses where the original Damaris
// persistency layer uses HDF5 (paper §III-C: "our implementation of Damaris
// interfaces with HDF5 by using a custom persistency layer embedded in a
// plugin").
//
// A DSF file holds an arbitrary number of dataset chunks, each identified by
// the paper's ⟨name, iteration, source⟩ tuple, carrying its layout (type +
// extents), its position in the global domain, and an optional per-chunk
// codec (gzip, or byte-shuffle + gzip — the same filters HDF5 offers). File
// structure:
//
//	[magic "DSFv0002"]
//	[chunk payloads ...]
//	[gob-encoded table of contents]
//	[toc offset : 8 bytes LE][toc length : 8 bytes LE][magic "DSFINDEX"]
//
// Chunks stream to disk as they arrive; the table of contents is written
// once at Close, so a writer failure leaves a detectably truncated file
// rather than a silently corrupt one.
//
// Encoding is deterministic: for a fixed chunk sequence and gzip level the
// produced file is byte-identical regardless of how many encode workers
// (see EncodePool) ran the compression, and the table of contents is
// serialized in a canonical (sorted-attribute) order.
package dsf

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"damaris/internal/layout"
	"damaris/internal/transform"
)

// Format magics. v0002 switched the TOC's attribute encoding from a gob map
// to a key-sorted slice (deterministic bytes); bumping the magic makes old
// files fail loudly instead of silently losing their attributes to gob's
// ignore-unknown-fields decoding.
var (
	headMagic = []byte("DSFv0002")
	tailMagic = []byte("DSFINDEX")
)

// Codec selects the per-chunk storage encoding.
type Codec uint8

// Supported codecs.
const (
	// None stores raw bytes.
	None Codec = iota
	// Gzip stores gzip-compressed bytes.
	Gzip
	// ShuffleGzip byte-shuffles elements (by the layout's element size)
	// before gzip — usually the best choice for floating-point fields.
	ShuffleGzip
)

func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case Gzip:
		return "gzip"
	case ShuffleGzip:
		return "shuffle+gzip"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ChunkMeta describes one stored chunk.
type ChunkMeta struct {
	Name      string
	Iteration int64
	Source    int
	Layout    layout.Layout
	Global    layout.Block // position in the global domain (optional)
	Codec     Codec
	RawSize   int64 // bytes before encoding
	Stored    int64 // bytes on disk
}

// tocRecord is the on-disk form of ChunkMeta (gob-friendly: layout as its
// binary descriptor).
type tocRecord struct {
	Name        string
	Iteration   int64
	Source      int
	LayoutDesc  []byte
	GlobalStart []int64
	GlobalCount []int64
	Codec       uint8
	RawSize     int64
	Stored      int64
	Offset      int64
	CRC         uint32
}

// tocAttr is one file-level attribute in the on-disk TOC. Attributes are
// serialized as a key-sorted slice (not a map) so TOC bytes are
// deterministic for identical content.
type tocAttr struct {
	Key, Value string
}

type toc struct {
	Records []tocRecord
	Attrs   []tocAttr
}

// DefaultGzipLevel is the compression level new writers start with.
const DefaultGzipLevel = gzip.DefaultCompression

// writeBufferSize is the bufio buffer in front of the output file: small
// chunks, the TOC and the footer coalesce into large sequential writes
// instead of one syscall per tiny piece.
const writeBufferSize = 256 << 10

// Writer streams chunks into a DSF byte stream. It is not safe for
// concurrent use; parallelism belongs in the encode stage (WriteChunks with
// an EncodePool), never in the byte stream. The sink can be a file (Create)
// or any io.Writer (NewWriter) — notably a storage backend's ObjectWriter,
// which is how DSF streams reach object stores.
type Writer struct {
	out    io.Writer // underlying sink, behind bw
	closer io.Closer // closed by Close when the Writer owns the sink (Create)
	bw     *bufio.Writer
	offset int64
	recs   []tocRecord
	attrs  map[string]string
	level  int // gzip level for Gzip/ShuffleGzip chunks
	closed bool
}

// NewWriter starts a DSF stream on an arbitrary sink and emits the header.
// Close finishes the stream (TOC + footer) but does not close the sink —
// the caller owns its lifecycle (e.g. committing a store.ObjectWriter).
func NewWriter(out io.Writer) (*Writer, error) {
	w := &Writer{
		out:    out,
		bw:     bufio.NewWriterSize(out, writeBufferSize),
		offset: int64(len(headMagic)),
		attrs:  make(map[string]string),
		level:  DefaultGzipLevel,
	}
	if _, err := w.bw.Write(headMagic); err != nil {
		return nil, fmt.Errorf("dsf: header: %w", err)
	}
	return w, nil
}

// Create opens path for writing and emits the header. Close closes the
// file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("dsf: %w", err)
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// abort closes an owned sink on the error path (no-op for NewWriter sinks).
func (w *Writer) abort() {
	if w.closer != nil {
		w.closer.Close()
	}
}

// SetGzipLevel selects the compression level for subsequently written
// Gzip/ShuffleGzip chunks. The full compress/gzip range is accepted:
// gzip.HuffmanOnly (-2) through gzip.BestCompression (9).
func (w *Writer) SetGzipLevel(level int) error {
	if !transform.ValidGzipLevel(level) {
		return fmt.Errorf("dsf: invalid gzip level %d", level)
	}
	w.level = level
	return nil
}

// SetAttribute records a file-level key/value attribute (units, provenance,
// simulation parameters — the "enriched dataset" metadata of §III-A).
func (w *Writer) SetAttribute(key, value string) {
	w.attrs[key] = value
}

// validateChunk checks one chunk before any bytes are spent encoding it.
func (w *Writer) validateChunk(meta ChunkMeta, data []byte) error {
	if w.closed {
		return fmt.Errorf("dsf: write on closed writer")
	}
	if meta.Name == "" {
		return fmt.Errorf("dsf: chunk with empty name")
	}
	if meta.Layout.IsZero() {
		return fmt.Errorf("dsf: chunk %q without layout", meta.Name)
	}
	if int64(len(data)) != meta.Layout.Bytes() {
		return fmt.Errorf("dsf: chunk %q: layout %v wants %d bytes, got %d",
			meta.Name, meta.Layout, meta.Layout.Bytes(), len(data))
	}
	if meta.Codec > ShuffleGzip {
		return fmt.Errorf("dsf: chunk %q: unknown codec %v", meta.Name, meta.Codec)
	}
	return nil
}

// WriteChunk encodes and appends one dataset chunk. data length must match
// meta.Layout.Bytes().
func (w *Writer) WriteChunk(meta ChunkMeta, data []byte) error {
	if err := w.validateChunk(meta, data); err != nil {
		return err
	}
	ec, err := encodeChunk(data, meta.Codec, meta.Layout.Type().Size(), w.level)
	if err != nil {
		return fmt.Errorf("dsf: chunk %q: %w", meta.Name, err)
	}
	err = w.appendEncoded(meta, int64(len(data)), ec)
	ec.release()
	return err
}

// appendEncoded streams one already-encoded chunk and records its TOC entry.
func (w *Writer) appendEncoded(meta ChunkMeta, rawSize int64, ec encodedChunk) error {
	if _, err := w.bw.Write(ec.stored); err != nil {
		return fmt.Errorf("dsf: chunk %q: %w", meta.Name, err)
	}
	rec := tocRecord{
		Name:       meta.Name,
		Iteration:  meta.Iteration,
		Source:     meta.Source,
		LayoutDesc: meta.Layout.Marshal(),
		Codec:      uint8(meta.Codec),
		RawSize:    rawSize,
		Stored:     int64(len(ec.stored)),
		Offset:     w.offset,
		CRC:        ec.crc,
	}
	if meta.Global.Valid() {
		rec.GlobalStart = append([]int64(nil), meta.Global.Start...)
		rec.GlobalCount = append([]int64(nil), meta.Global.Count...)
	}
	w.recs = append(w.recs, rec)
	w.offset += int64(len(ec.stored))
	return nil
}

// StoredBytes returns the number of payload bytes written so far (excluding
// header and TOC) — the figure throughput is computed from.
func (w *Writer) StoredBytes() int64 { return w.offset - int64(len(headMagic)) }

// Close writes the table of contents and footer and, when the Writer owns
// its sink (Create), closes it. The TOC, footer and any still-buffered
// chunk bytes leave in one coalesced flush rather than a syscall per piece.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	t := toc{Records: w.recs, Attrs: make([]tocAttr, 0, len(w.attrs))}
	for k, v := range w.attrs {
		t.Attrs = append(t.Attrs, tocAttr{Key: k, Value: v})
	}
	sort.Slice(t.Attrs, func(i, j int) bool { return t.Attrs[i].Key < t.Attrs[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		w.abort()
		return fmt.Errorf("dsf: toc encode: %w", err)
	}
	if _, err := w.bw.Write(buf.Bytes()); err != nil {
		w.abort()
		return fmt.Errorf("dsf: toc write: %w", err)
	}
	var foot [24]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(w.offset))
	binary.LittleEndian.PutUint64(foot[8:], uint64(buf.Len()))
	copy(foot[16:], tailMagic)
	if _, err := w.bw.Write(foot[:]); err != nil {
		w.abort()
		return fmt.Errorf("dsf: footer: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return fmt.Errorf("dsf: flush: %w", err)
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// decode reverses encodeChunk. rawSize (from the TOC) sizes the
// decompression buffer so the decode runs in one pass instead of growing
// through io.ReadAll; an implausible value — negative, ≥2 GiB, or beyond
// deflate's ~1032:1 expansion limit for the stored bytes — degrades to
// unhinted decoding rather than trusting a corrupt TOC with a huge upfront
// allocation.
func decode(stored []byte, c Codec, elemSize int, rawSize int64) ([]byte, error) {
	hint := func() []byte {
		if rawSize > 0 && rawSize < 1<<31 && rawSize <= 1032*int64(len(stored))+64 {
			return make([]byte, 0, rawSize)
		}
		return nil
	}
	switch c {
	case None:
		return stored, nil
	case Gzip:
		return transform.DecompressGzipTo(hint(), stored)
	case ShuffleGzip:
		raw, err := transform.DecompressGzipTo(hint(), stored)
		if err != nil {
			return nil, err
		}
		return transform.Unshuffle(raw, elemSize)
	default:
		return nil, fmt.Errorf("unknown codec %v", c)
	}
}

// Reader reads a DSF stream from any random-access source — a file (Open),
// an in-memory buffer, or a storage backend's ObjectReader (OpenReaderAt).
type Reader struct {
	ra     io.ReaderAt
	size   int64
	closer io.Closer // closed by Close when the Reader owns the source (Open)
	recs   []tocRecord
	attrs  map[string]string
	metas  []ChunkMeta
}

// Open reads and validates the file's header, footer and table of contents.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dsf: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dsf: stat: %w", err)
	}
	r, err := OpenReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// OpenReaderAt validates a DSF stream of the given size on any
// random-access source. Close does not close the source; the caller owns
// its lifecycle.
func OpenReaderAt(ra io.ReaderAt, size int64) (*Reader, error) {
	r := &Reader{ra: ra, size: size}
	if err := r.load(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) load() error {
	head := make([]byte, len(headMagic))
	if r.size < int64(len(headMagic)) {
		return fmt.Errorf("dsf: header: truncated")
	}
	if _, err := r.ra.ReadAt(head, 0); err != nil {
		return fmt.Errorf("dsf: header: %w", err)
	}
	if !bytes.Equal(head, headMagic) {
		return fmt.Errorf("dsf: not a DSF file (bad header magic)")
	}
	if r.size < int64(len(headMagic))+24 {
		return fmt.Errorf("dsf: file truncated (no footer)")
	}
	var foot [24]byte
	if _, err := r.ra.ReadAt(foot[:], r.size-24); err != nil {
		return fmt.Errorf("dsf: footer: %w", err)
	}
	if !bytes.Equal(foot[16:24], tailMagic) {
		return fmt.Errorf("dsf: file truncated or corrupt (bad footer magic)")
	}
	tocOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	tocLen := int64(binary.LittleEndian.Uint64(foot[8:]))
	// Bounds-check before any arithmetic that could overflow and before the
	// TOC allocation: a corrupt or hostile footer must fail loudly, never
	// drive a huge make().
	if tocOff < int64(len(headMagic)) || tocLen < 0 || tocOff > r.size-24 ||
		r.size-24-tocOff != tocLen {
		return fmt.Errorf("dsf: inconsistent footer (toc at %d len %d, file %d)", tocOff, tocLen, r.size)
	}
	tocBytes := make([]byte, tocLen)
	if _, err := r.ra.ReadAt(tocBytes, tocOff); err != nil {
		return fmt.Errorf("dsf: toc read: %w", err)
	}
	var t toc
	if err := gob.NewDecoder(bytes.NewReader(tocBytes)).Decode(&t); err != nil {
		return fmt.Errorf("dsf: toc decode: %w", err)
	}
	r.recs = t.Records
	r.attrs = make(map[string]string, len(t.Attrs))
	for _, a := range t.Attrs {
		r.attrs[a.Key] = a.Value
	}
	r.metas = make([]ChunkMeta, len(r.recs))
	for i, rec := range r.recs {
		// Every chunk must lie wholly inside the payload region [header,
		// toc). A TOC that says otherwise is corrupt; trusting it would at
		// best read garbage and at worst allocate rec.Stored bytes on a
		// attacker-chosen 2^60 size.
		if rec.Stored < 0 || rec.RawSize < 0 || rec.Offset < int64(len(headMagic)) ||
			rec.Stored > tocOff-rec.Offset {
			return fmt.Errorf("dsf: chunk %d out of bounds (offset %d stored %d, payload ends %d)",
				i, rec.Offset, rec.Stored, tocOff)
		}
		l, err := layout.Unmarshal(rec.LayoutDesc)
		if err != nil {
			return fmt.Errorf("dsf: chunk %d layout: %w", i, err)
		}
		m := ChunkMeta{
			Name:      rec.Name,
			Iteration: rec.Iteration,
			Source:    rec.Source,
			Layout:    l,
			Codec:     Codec(rec.Codec),
			RawSize:   rec.RawSize,
			Stored:    rec.Stored,
		}
		if len(rec.GlobalStart) > 0 {
			m.Global = layout.Block{Start: rec.GlobalStart, Count: rec.GlobalCount}
		}
		r.metas[i] = m
	}
	return nil
}

// Chunks lists the chunk metadata in file order. The returned slice is a
// copy (Global blocks included) — callers may reorder or rewrite it without
// corrupting reader state, the same contract Collection.Files() gives.
// Readers are shared across concurrent requests in the read gateway, so
// internal state must never leak through an accessor.
func (r *Reader) Chunks() []ChunkMeta {
	out := make([]ChunkMeta, len(r.metas))
	for i, m := range r.metas {
		out[i] = copyMeta(m)
	}
	return out
}

// copyMeta deep-copies the meta's aliasable parts. Layout is already
// defensive (Extents returns a copy); Global's Start/Count slices are not.
func copyMeta(m ChunkMeta) ChunkMeta {
	if m.Global.Valid() {
		m.Global = layout.Block{
			Start: append([]int64(nil), m.Global.Start...),
			Count: append([]int64(nil), m.Global.Count...),
		}
	}
	return m
}

// NumChunks returns the chunk count without copying any metadata.
func (r *Reader) NumChunks() int { return len(r.metas) }

// Chunk returns a copy of the i-th chunk's metadata.
func (r *Reader) Chunk(i int) (ChunkMeta, error) {
	if i < 0 || i >= len(r.metas) {
		return ChunkMeta{}, fmt.Errorf("dsf: chunk index %d out of range [0,%d)", i, len(r.metas))
	}
	return copyMeta(r.metas[i]), nil
}

// Attributes returns a copy of the file-level attributes; mutating it does
// not touch reader state.
func (r *Reader) Attributes() map[string]string {
	out := make(map[string]string, len(r.attrs))
	for k, v := range r.attrs {
		out[k] = v
	}
	return out
}

// Attribute returns one file-level attribute without copying the map.
func (r *Reader) Attribute(key string) (string, bool) {
	v, ok := r.attrs[key]
	return v, ok
}

// ReadChunk returns the decoded payload of chunk index i, verifying its
// checksum.
func (r *Reader) ReadChunk(i int) ([]byte, error) {
	if i < 0 || i >= len(r.recs) {
		return nil, fmt.Errorf("dsf: chunk index %d out of range [0,%d)", i, len(r.recs))
	}
	rec := r.recs[i]
	stored := make([]byte, rec.Stored)
	if _, err := r.ra.ReadAt(stored, rec.Offset); err != nil {
		return nil, fmt.Errorf("dsf: chunk %d read: %w", i, err)
	}
	if crc := crc32.ChecksumIEEE(stored); crc != rec.CRC {
		return nil, fmt.Errorf("dsf: chunk %d checksum mismatch (%08x != %08x)", i, crc, rec.CRC)
	}
	data, err := decode(stored, Codec(rec.Codec), r.metas[i].Layout.Type().Size(), rec.RawSize)
	if err != nil {
		return nil, fmt.Errorf("dsf: chunk %d: %w", i, err)
	}
	if int64(len(data)) != rec.RawSize {
		return nil, fmt.Errorf("dsf: chunk %d decoded to %d bytes, toc says %d", i, len(data), rec.RawSize)
	}
	return data, nil
}

// Find returns the index of the chunk with the given tuple, or -1.
func (r *Reader) Find(name string, iteration int64, source int) int {
	for i, m := range r.metas {
		if m.Name == name && m.Iteration == iteration && m.Source == source {
			return i
		}
	}
	return -1
}

// Verify reads every chunk, checking checksums and decodability.
func (r *Reader) Verify() error {
	for i := range r.metas {
		if _, err := r.ReadChunk(i); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the underlying source when the Reader owns it (Open);
// for OpenReaderAt sources it is a no-op.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}
