package dsf

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"damaris/internal/layout"
	"damaris/internal/mpi"
)

func tmpfile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "out.dsf")
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := tmpfile(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("model", "cm1-mini")
	w.SetAttribute("unit", "K")

	lay := layout.MustNew(layout.Float32, 4, 3)
	xs := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	data := mpi.Float32sToBytes(xs)
	for i, codec := range []Codec{None, Gzip, ShuffleGzip} {
		meta := ChunkMeta{
			Name: "theta", Iteration: int64(i), Source: 7, Layout: lay, Codec: codec,
			Global: layout.Block{Start: []int64{0, int64(3 * i)}, Count: []int64{4, 3}},
		}
		if err := w.WriteChunk(meta, data); err != nil {
			t.Fatal(err)
		}
	}
	if w.StoredBytes() <= 0 {
		t.Error("StoredBytes should be positive")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be nil")
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Attributes()["model"]; got != "cm1-mini" {
		t.Errorf("attribute = %q", got)
	}
	chunks := r.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	for i, m := range chunks {
		if m.Name != "theta" || m.Iteration != int64(i) || m.Source != 7 {
			t.Errorf("meta[%d] = %+v", i, m)
		}
		if !m.Layout.Equal(lay) {
			t.Errorf("layout[%d] = %v", i, m.Layout)
		}
		if !m.Global.Valid() || m.Global.Start[1] != int64(3*i) {
			t.Errorf("global[%d] = %+v", i, m.Global)
		}
		got, err := r.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("chunk %d (%v) payload mismatch", i, m.Codec)
		}
	}
	if err := r.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFind(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	lay := layout.MustNew(layout.Byte, 4)
	_ = w.WriteChunk(ChunkMeta{Name: "u", Iteration: 1, Source: 0, Layout: lay}, []byte("aaaa"))
	_ = w.WriteChunk(ChunkMeta{Name: "v", Iteration: 1, Source: 2, Layout: lay}, []byte("bbbb"))
	_ = w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if i := r.Find("v", 1, 2); i != 1 {
		t.Errorf("Find = %d", i)
	}
	if i := r.Find("v", 1, 3); i != -1 {
		t.Errorf("Find missing = %d", i)
	}
}

func TestWriterValidation(t *testing.T) {
	w, _ := Create(tmpfile(t))
	lay := layout.MustNew(layout.Byte, 4)
	if err := w.WriteChunk(ChunkMeta{Name: "", Layout: lay}, []byte("aaaa")); err == nil {
		t.Error("empty name should fail")
	}
	if err := w.WriteChunk(ChunkMeta{Name: "x"}, []byte("aaaa")); err == nil {
		t.Error("zero layout should fail")
	}
	if err := w.WriteChunk(ChunkMeta{Name: "x", Layout: lay}, []byte("aa")); err == nil {
		t.Error("size mismatch should fail")
	}
	if err := w.WriteChunk(ChunkMeta{Name: "x", Layout: lay, Codec: Codec(9)}, []byte("aaaa")); err == nil {
		t.Error("unknown codec should fail")
	}
	_ = w.Close()
	if err := w.WriteChunk(ChunkMeta{Name: "x", Layout: lay}, []byte("aaaa")); err == nil {
		t.Error("write after close should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.dsf")); err == nil {
		t.Error("missing file should fail")
	}

	bad := filepath.Join(dir, "bad.dsf")
	_ = os.WriteFile(bad, []byte("this is not a dsf file at all, padding padding"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("bad magic should fail")
	}

	short := filepath.Join(dir, "short.dsf")
	_ = os.WriteFile(short, []byte("DSF"), 0o644)
	if _, err := Open(short); err == nil {
		t.Error("short file should fail")
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	lay := layout.MustNew(layout.Byte, 1024)
	_ = w.WriteChunk(ChunkMeta{Name: "x", Layout: lay}, make([]byte, 1024))
	_ = w.Close()
	full, _ := os.ReadFile(path)
	// Simulate a writer crash: drop the footer.
	_ = os.WriteFile(path, full[:len(full)-10], 0o644)
	if _, err := Open(path); err == nil {
		t.Error("truncated file should fail to open")
	}
}

func TestCorruptChunkDetected(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	lay := layout.MustNew(layout.Byte, 64)
	payload := bytes.Repeat([]byte{7}, 64)
	_ = w.WriteChunk(ChunkMeta{Name: "x", Layout: lay}, payload)
	_ = w.Close()
	// Flip a byte inside the chunk payload (after the 8-byte header).
	raw, _ := os.ReadFile(path)
	raw[12] ^= 0xFF
	_ = os.WriteFile(path, raw, 0o644)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err) // TOC itself is intact
	}
	defer r.Close()
	if _, err := r.ReadChunk(0); err == nil {
		t.Error("corrupt chunk should fail checksum")
	}
	if err := r.Verify(); err == nil {
		t.Error("Verify should catch corruption")
	}
}

func TestReadChunkBounds(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	_ = w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadChunk(0); err == nil {
		t.Error("out-of-range chunk should fail")
	}
	if _, err := r.ReadChunk(-1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	w.SetAttribute("empty", "yes")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Chunks()) != 0 {
		t.Error("expected no chunks")
	}
	if r.Attributes()["empty"] != "yes" {
		t.Error("attributes lost")
	}
}

// StoredBytes and the TOC offsets must stay exact now that chunk, TOC and
// footer writes coalesce in a bufio layer: the counter tracks logical bytes,
// not flushed ones.
func TestStoredBytesWithBufferedWrites(t *testing.T) {
	path := tmpfile(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.MustNew(layout.Byte, 100)
	// Many small chunks: all of them fit inside the write buffer, so
	// nothing has hit the file when StoredBytes is read.
	const chunks = 20
	for i := 0; i < chunks; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 100)
		if err := w.WriteChunk(ChunkMeta{Name: "x", Iteration: int64(i), Layout: lay}, data); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.StoredBytes(); got != chunks*100 {
		t.Errorf("StoredBytes = %d before Close, want %d", got, chunks*100)
	}
	if st, err := os.Stat(path); err != nil || st.Size() >= chunks*100 {
		t.Errorf("expected writes to be buffered, file is %v bytes (err %v)", st.Size(), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.StoredBytes(); got != chunks*100 {
		t.Errorf("StoredBytes = %d after Close, want %d (TOC/footer must not count)", got, chunks*100)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < chunks; i++ {
		b, err := r.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i) {
			t.Errorf("chunk %d payload wrong after buffered write", i)
		}
	}
}

func TestCodecStrings(t *testing.T) {
	if None.String() != "none" || Gzip.String() != "gzip" || ShuffleGzip.String() != "shuffle+gzip" {
		t.Error("codec strings wrong")
	}
	if Codec(9).String() != "codec(9)" {
		t.Error("unknown codec string wrong")
	}
}

func TestCompressionShrinksSmoothField(t *testing.T) {
	path := tmpfile(t)
	w, _ := Create(path)
	n := int64(1 << 14)
	lay := layout.MustNew(layout.Float32, n)
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = 280 + float32(i%100)/100
	}
	data := mpi.Float32sToBytes(xs)
	_ = w.WriteChunk(ChunkMeta{Name: "smooth", Layout: lay, Codec: ShuffleGzip}, data)
	_ = w.Close()
	r, _ := Open(path)
	defer r.Close()
	m := r.Chunks()[0]
	if m.Stored >= m.RawSize {
		t.Errorf("shuffle+gzip did not shrink: %d -> %d", m.RawSize, m.Stored)
	}
}

// Property: arbitrary float32 chunks round-trip through every codec.
func TestQuickChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, codecSel uint8, nRaw uint16) bool {
		n := int64(nRaw%512) + 1
		codec := []Codec{None, Gzip, ShuffleGzip}[int(codecSel)%3]
		lay, err := layout.New(layout.Float64, n)
		if err != nil {
			return false
		}
		xs := make([]float64, n)
		r2 := rand.New(rand.NewSource(seed))
		for i := range xs {
			xs[i] = r2.NormFloat64()
		}
		data := mpi.Float64sToBytes(xs)
		path := filepath.Join(os.TempDir(), "dsfquick", "q.dsf")
		_ = os.MkdirAll(filepath.Dir(path), 0o755)
		w, err := Create(path)
		if err != nil {
			return false
		}
		if err := w.WriteChunk(ChunkMeta{Name: "q", Layout: lay, Codec: codec}, data); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := Open(path)
		if err != nil {
			return false
		}
		defer rd.Close()
		got, err := rd.ReadChunk(0)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestAccessorAliasing proves Chunks() and Attributes() return state no
// caller can corrupt: the read gateway shares one Reader across concurrent
// requests, so a handler scribbling on returned metadata must never change
// what the next request sees.
func TestAccessorAliasing(t *testing.T) {
	path := tmpfile(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("unit", "K")
	lay := layout.MustNew(layout.Float32, 4)
	meta := ChunkMeta{
		Name: "theta", Iteration: 3, Source: 7, Layout: lay, Codec: None,
		Global: layout.Block{Start: []int64{8}, Count: []int64{4}},
	}
	if err := w.WriteChunk(meta, mpi.Float32sToBytes([]float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Mutate everything reachable through the accessors.
	chunks := r.Chunks()
	chunks[0].Name = "corrupted"
	chunks[0].Iteration = -1
	chunks[0].Global.Start[0] = 999
	chunks[0].Global.Count[0] = -5
	attrs := r.Attributes()
	attrs["unit"] = "corrupted"
	attrs["extra"] = "x"

	got := r.Chunks()
	if got[0].Name != "theta" || got[0].Iteration != 3 {
		t.Fatalf("chunk meta corrupted through accessor: %+v", got[0])
	}
	if got[0].Global.Start[0] != 8 || got[0].Global.Count[0] != 4 {
		t.Fatalf("global block corrupted through accessor: %+v", got[0].Global)
	}
	if v := r.Attributes()["unit"]; v != "K" {
		t.Fatalf("attribute corrupted through accessor: %q", v)
	}
	if _, ok := r.Attributes()["extra"]; ok {
		t.Fatal("attribute map insertion leaked into reader state")
	}
	if v, ok := r.Attribute("unit"); !ok || v != "K" {
		t.Fatalf("Attribute(unit) = %q, %v", v, ok)
	}
	if m, err := r.Chunk(0); err != nil || m.Name != "theta" {
		t.Fatalf("Chunk(0) = %+v, %v", m, err)
	}
	if _, err := r.Chunk(1); err == nil {
		t.Fatal("Chunk(1) out of range should error")
	}
	if r.Find("theta", 3, 7) != 0 {
		t.Fatal("Find no longer locates the chunk after accessor mutation")
	}
}
