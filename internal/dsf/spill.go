package dsf

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Scratch-spill framing.
//
// When the persistence pipeline backpressures past its spill threshold, the
// event loop appends whole iterations to a local scratch file so it can
// release their shared-memory chunks early. Each spilled iteration is one
// self-describing frame:
//
//	[8]  spillMagic "DSFSPILL"
//	[8]  payload length, little-endian
//	[8]  iteration number, little-endian
//	[4]  CRC-32 (IEEE) of the payload
//	[n]  payload: a complete DSF stream holding the iteration's chunks
//
// The format is append-only and prefix-valid by construction: a crash mid
// append leaves a torn final frame, and recovery keeps exactly the frames
// before it. DecodeSpillFrames is total — arbitrary bytes produce the valid
// prefix and a count of trailing garbage, never a panic — because crash
// recovery runs it on whatever the filesystem preserved.

const (
	spillMagic = "DSFSPILL"
	// SpillFrameOverhead is the fixed header size preceding each payload.
	SpillFrameOverhead = 8 + 8 + 8 + 4
	// maxSpillPayload bounds a single frame's payload so a corrupt length
	// field cannot drive recovery into a giant allocation. One frame holds
	// one iteration's chunks, far below this.
	maxSpillPayload = 1 << 31
)

// SpillFrame is one decoded scratch-file frame.
type SpillFrame struct {
	// Iteration is the simulation iteration the payload belongs to.
	Iteration int64
	// Payload is a complete DSF stream (readable via OpenReaderAt).
	Payload []byte
	// Offset is the frame's byte offset in the scratch file; Offset plus
	// SpillFrameOverhead plus len(Payload) is where the next frame starts.
	Offset int64
}

// AppendSpillFrame appends one frame to w and returns the bytes written.
func AppendSpillFrame(w io.Writer, iteration int64, payload []byte) (int64, error) {
	if int64(len(payload)) > maxSpillPayload {
		return 0, fmt.Errorf("dsf: spill payload %d bytes exceeds frame bound", len(payload))
	}
	var hdr [SpillFrameOverhead]byte
	copy(hdr[:8], spillMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(iteration))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("dsf: spill frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("dsf: spill frame payload: %w", err)
	}
	return SpillFrameOverhead + int64(len(payload)), nil
}

// DecodeSpillFrames parses the valid frame prefix of b. It stops at the
// first torn, truncated or corrupt frame and reports how many bytes it
// consumed; rest = len(b)-consumed bytes are garbage the caller should
// truncate away. It never fails: zero frames and consumed 0 is a legal
// answer for arbitrary input.
func DecodeSpillFrames(b []byte) (frames []SpillFrame, consumed int64) {
	off := int64(0)
	for {
		rest := b[off:]
		if int64(len(rest)) < SpillFrameOverhead {
			return frames, off
		}
		if string(rest[:8]) != spillMagic {
			return frames, off
		}
		plen := binary.LittleEndian.Uint64(rest[8:16])
		if plen > maxSpillPayload || int64(plen) > int64(len(rest))-SpillFrameOverhead {
			return frames, off // torn or corrupt length: stop at the last whole frame
		}
		iteration := int64(binary.LittleEndian.Uint64(rest[16:24]))
		wantCRC := binary.LittleEndian.Uint32(rest[24:28])
		payload := rest[SpillFrameOverhead : SpillFrameOverhead+int64(plen)]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return frames, off
		}
		frames = append(frames, SpillFrame{Iteration: iteration, Payload: payload, Offset: off})
		off += SpillFrameOverhead + int64(plen)
	}
}

// ReadSpillFile reads and decodes a scratch file from disk. A missing file
// is zero frames, not an error — recovery treats "no scratch" and "empty
// scratch" identically. consumed is the length of the valid prefix; callers
// truncate the file to it before appending new frames.
func ReadSpillFile(path string) (frames []SpillFrame, consumed int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("dsf: read spill file: %w", err)
	}
	frames, consumed = DecodeSpillFrames(b)
	return frames, consumed, nil
}
