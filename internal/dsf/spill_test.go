package dsf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func buildSpill(tb testing.TB, iterations ...int64) []byte {
	var buf bytes.Buffer
	for _, it := range iterations {
		payload := fuzzSeedFile(tb, None)
		if _, err := AppendSpillFrame(&buf, it, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSpillRoundTrip(t *testing.T) {
	b := buildSpill(t, 3, 4, 7)
	frames, consumed := DecodeSpillFrames(b)
	if consumed != int64(len(b)) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(b))
	}
	if len(frames) != 3 {
		t.Fatalf("decoded %d frames, want 3", len(frames))
	}
	wantIts := []int64{3, 4, 7}
	for i, f := range frames {
		if f.Iteration != wantIts[i] {
			t.Errorf("frame %d iteration = %d, want %d", i, f.Iteration, wantIts[i])
		}
		// Each payload must be a complete, openable DSF stream.
		r, err := OpenReaderAt(bytes.NewReader(f.Payload), int64(len(f.Payload)))
		if err != nil {
			t.Fatalf("frame %d payload does not open as DSF: %v", i, err)
		}
		if len(r.Chunks()) == 0 {
			t.Errorf("frame %d payload has no chunks", i)
		}
	}
}

// A torn final frame (crash mid-append) must yield exactly the whole frames
// before it, with consumed marking the truncation point.
func TestSpillTornTail(t *testing.T) {
	whole := buildSpill(t, 1, 2)
	torn := buildSpill(t, 9)
	for cut := 1; cut < len(torn); cut += 7 {
		b := append(append([]byte{}, whole...), torn[:len(torn)-cut]...)
		frames, consumed := DecodeSpillFrames(b)
		if len(frames) != 2 {
			t.Fatalf("cut %d: decoded %d frames, want 2", cut, len(frames))
		}
		if consumed != int64(len(whole)) {
			t.Fatalf("cut %d: consumed %d, want %d", cut, consumed, len(whole))
		}
	}
}

// A corrupt byte anywhere in a frame must stop decoding at the previous
// frame boundary, never crash or return the damaged frame.
func TestSpillCorruptPayload(t *testing.T) {
	b := buildSpill(t, 1, 2)
	frames, _ := DecodeSpillFrames(b)
	if len(frames) != 2 {
		t.Fatal("bad fixture")
	}
	second := frames[1].Offset
	// Flip a payload byte in the second frame.
	b2 := append([]byte{}, b...)
	b2[second+SpillFrameOverhead+3] ^= 0xff
	got, consumed := DecodeSpillFrames(b2)
	if len(got) != 1 || consumed != second {
		t.Fatalf("corrupt second frame: %d frames, consumed %d; want 1 frame, consumed %d",
			len(got), consumed, second)
	}
}

func TestSpillReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "srv.spill")

	// Missing file: zero frames, no error.
	frames, consumed, err := ReadSpillFile(path)
	if err != nil || len(frames) != 0 || consumed != 0 {
		t.Fatalf("missing file: frames=%d consumed=%d err=%v", len(frames), consumed, err)
	}

	b := buildSpill(t, 5)
	garbage := append(append([]byte{}, b...), []byte("torn-tail-bytes")...)
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	frames, consumed, err = ReadSpillFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Iteration != 5 {
		t.Fatalf("decoded %d frames, want 1 (iteration 5)", len(frames))
	}
	if consumed != int64(len(b)) {
		t.Fatalf("consumed %d, want %d", consumed, len(b))
	}
}

// FuzzSpillDecode drives the scratch-file decoder with arbitrary bytes. The
// invariant is totality: corrupt or truncated spill files must produce a
// valid (possibly empty) frame prefix — never a panic or an allocation
// driven by a corrupt length field — because crash recovery runs this on
// whatever a dying node left behind.
func FuzzSpillDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(spillMagic))
	f.Add(buildSpill(f, 1))
	f.Add(buildSpill(f, 1, 2, 3))
	torn := buildSpill(f, 9)
	f.Add(torn[:len(torn)-5])
	f.Fuzz(func(t *testing.T, b []byte) {
		frames, consumed := DecodeSpillFrames(b)
		if consumed < 0 || consumed > int64(len(b)) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(b))
		}
		off := int64(0)
		for i, fr := range frames {
			if fr.Offset != off {
				t.Fatalf("frame %d offset %d, want %d", i, fr.Offset, off)
			}
			off = fr.Offset + SpillFrameOverhead + int64(len(fr.Payload))
		}
		if off != consumed {
			t.Fatalf("frames end at %d but consumed = %d", off, consumed)
		}
		// Decoding the valid prefix again must be a fixed point.
		again, c2 := DecodeSpillFrames(b[:consumed])
		if len(again) != len(frames) || c2 != consumed {
			t.Fatalf("re-decode of valid prefix: %d frames/%d bytes, want %d/%d",
				len(again), c2, len(frames), consumed)
		}
	})
}
