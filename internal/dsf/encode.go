package dsf

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"damaris/internal/control"
	"damaris/internal/obs"
	"damaris/internal/stats"
	"damaris/internal/transform"
)

// This file is the encode/write split of the persistence hot path (paper
// §IV-D, "potential use of spare time"): chunk transformation — shuffle,
// deflate, checksum — is CPU work that parallelizes perfectly across the
// node's spare cores, while the byte stream into one file must stay
// sequential. An EncodePool runs the former on N workers; Writer.WriteChunks
// streams completed chunks in submission order, so the file bytes never
// depend on worker count or scheduling.

// scratchBuf is a pooled, reusable byte buffer for encode output and
// shuffle scratch space.
type scratchBuf struct{ b []byte }

var scratchPool = sync.Pool{New: func() any { return new(scratchBuf) }}

// encodedChunk is one chunk's storage encoding. For codec None, stored
// aliases the caller's data (zero-copy) and buf is nil; otherwise stored
// aliases buf's pooled backing array, returned to the pool by release.
type encodedChunk struct {
	stored []byte
	buf    *scratchBuf
	crc    uint32
}

// release recycles the chunk's pooled buffer, if any. The stored slice must
// not be used afterwards.
func (ec *encodedChunk) release() {
	if ec.buf != nil {
		ec.buf.b = ec.stored[:0]
		scratchPool.Put(ec.buf)
		ec.buf = nil
	}
}

// encodeChunk encodes data for storage with pooled buffers: the gzip
// compressor, the shuffle scratch space and the output buffer are all
// recycled, so a steady-state encode performs no large allocations.
func encodeChunk(data []byte, c Codec, elemSize, level int) (encodedChunk, error) {
	switch c {
	case None:
		return encodedChunk{stored: data, crc: crc32.ChecksumIEEE(data)}, nil
	case Gzip:
		out := scratchPool.Get().(*scratchBuf)
		stored, err := transform.CompressGzipTo(out.b, data, level)
		if err != nil {
			scratchPool.Put(out)
			return encodedChunk{}, err
		}
		return encodedChunk{stored: stored, buf: out, crc: crc32.ChecksumIEEE(stored)}, nil
	case ShuffleGzip:
		sh := scratchPool.Get().(*scratchBuf)
		shuffled, err := transform.ShuffleTo(sh.b, data, elemSize)
		if err != nil {
			scratchPool.Put(sh)
			return encodedChunk{}, err
		}
		sh.b = shuffled
		out := scratchPool.Get().(*scratchBuf)
		stored, err := transform.CompressGzipTo(out.b, shuffled, level)
		scratchPool.Put(sh)
		if err != nil {
			scratchPool.Put(out)
			return encodedChunk{}, err
		}
		return encodedChunk{stored: stored, buf: out, crc: crc32.ChecksumIEEE(stored)}, nil
	default:
		return encodedChunk{}, fmt.Errorf("unknown codec %v", c)
	}
}

// encodeJob is one chunk travelling to an encode worker.
type encodeJob struct {
	data     []byte
	codec    Codec
	elemSize int
	level    int
	iter     int64 // chunk's iteration, carried for lifecycle tracing
	result   chan<- encodeResult
}

type encodeResult struct {
	ec  encodedChunk
	err error
}

// EncodePool is a shared pool of chunk-encode workers. One pool serves a
// whole dedicated core (all its persist writers submit to it), sized by the
// encode_workers config knob — or, under the adaptive control plane, resized
// live between iterations by control.Tuner. Methods are safe for concurrent
// use; all of them tolerate a nil receiver, which behaves as "no pool"
// (serial encode).
type EncodePool struct {
	jobs  chan encodeJob
	wg    sync.WaitGroup
	start time.Time
	// stopped freezes the utilization wall clock once Close drains, so a
	// quiesced pool's Stats (and its registry exposition) stop changing.
	// Guarded by mu; zero while running.
	stopped time.Time

	// tracer, when set, receives one StageEncode span per chunk; trServer
	// labels them with the owning dedicated core's world rank. Written
	// before the first WriteChunks (SetTracer), read by workers.
	tracer   *obs.Tracer
	trServer int

	mu          sync.Mutex
	ws          control.WorkerSet // resizable worker-slot bookkeeping
	chunks      int64
	rawBytes    int64
	storedBytes int64
	failures    int64
	latAcc      stats.Accumulator
	inFlight    int64
	maxInFlight int64
}

// NewEncodePool starts workers encode goroutines. workers <= 0 returns nil,
// the serial no-pool mode every consumer accepts.
func NewEncodePool(workers int) *EncodePool {
	if workers <= 0 {
		return nil
	}
	// The handoff buffer anticipates growth: a pool started small and grown
	// by Resize (auto control) would otherwise keep a near-rendezvous
	// channel that starves the added workers.
	queueCap := workers
	if queueCap < 8 {
		queueCap = 8
	}
	p := &EncodePool{
		jobs:  make(chan encodeJob, queueCap),
		start: time.Now(),
	}
	p.mu.Lock()
	p.ws.Resize(workers, p.startWorker)
	p.mu.Unlock()
	return p
}

// startWorker launches one encode goroutine in its slot. Caller holds p.mu
// (control.WorkerSet.Resize invokes it under the pool's lock).
func (p *EncodePool) startWorker(slot int, stop chan struct{}) {
	p.wg.Add(1)
	go p.worker(slot, stop)
}

// SetTracer attaches a lifecycle tracer: every chunk encoded by the pool
// records one StageEncode span labelled with the owning dedicated core's
// world rank. A nil tracer (or receiver) disables tracing. Safe to call
// while workers run; spans already in flight keep the previous tracer.
func (p *EncodePool) SetTracer(tr *obs.Tracer, server int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.tracer = tr
	p.trServer = server
	p.mu.Unlock()
}

// Workers returns the commanded pool size (0 for a nil pool).
func (p *EncodePool) Workers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ws.Workers()
}

// Resize changes the commanded worker count, growing new goroutines or
// signalling the newest ones to stop after their current chunk (slot
// semantics in control.WorkerSet). The pool never shrinks below one worker
// (a drained pool would deadlock WriteChunks), and a nil pool ignores the
// call — the controller treats "no pool" as a fixed serial deployment.
// Resizing never changes output bytes: WriteChunks streams in submission
// order for any worker count. Must not race Close.
func (p *EncodePool) Resize(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ws.Resize(n, p.startWorker)
}

// Close stops the workers after draining submitted jobs. No WriteChunks or
// Resize call may be in flight or submitted afterwards.
func (p *EncodePool) Close() {
	if p == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
	p.mu.Lock()
	p.stopped = time.Now()
	p.mu.Unlock()
}

func (p *EncodePool) worker(id int, stop chan struct{}) {
	defer p.wg.Done()
	for {
		// A stopped worker exits between chunks: the non-blocking check runs
		// first so a closed stop wins even while jobs keep arriving (the
		// blocking select below picks arbitrarily between ready cases).
		select {
		case <-stop:
			return
		default:
		}
		select {
		case <-stop:
			return
		case job, ok := <-p.jobs:
			if !ok {
				return
			}
			start := time.Now()
			ec, err := encodeChunk(job.data, job.codec, job.elemSize, job.level)
			wall := time.Since(start)
			dur := wall.Seconds()
			p.mu.Lock()
			p.ws.AddBusy(id, dur)
			p.latAcc.Add(dur)
			p.chunks++
			p.rawBytes += int64(len(job.data))
			if err != nil {
				p.failures++
			} else {
				p.storedBytes += int64(len(ec.stored))
			}
			tr, srv := p.tracer, p.trServer
			p.mu.Unlock()
			tr.Record(obs.StageEncode, srv, job.iter, start, wall, int64(len(job.data)), err != nil)
			job.result <- encodeResult{ec: ec, err: err}
		}
	}
}

// submit queues one chunk, tracking the raw bytes in flight between
// submission and drain.
func (p *EncodePool) submit(job encodeJob, raw int64) {
	p.mu.Lock()
	p.inFlight += raw
	if p.inFlight > p.maxInFlight {
		p.maxInFlight = p.inFlight
	}
	p.mu.Unlock()
	p.jobs <- job
}

// drained marks raw bytes as consumed by the streaming side.
func (p *EncodePool) drained(raw int64) {
	p.mu.Lock()
	p.inFlight -= raw
	p.mu.Unlock()
}

// EncodeStats is a snapshot of the encode stage's metrics, exported next to
// the write-behind pipeline's PipelineStats.
type EncodeStats struct {
	// Workers is the pool size (0 = serial in-line encoding).
	Workers int
	// Chunks counts chunks encoded by the pool; Failures those that errored.
	Chunks, Failures int64
	// RawBytes and StoredBytes measure the pool's input and output volume.
	RawBytes, StoredBytes int64
	// Latency summarizes per-chunk encode seconds.
	Latency stats.Summary
	// Utilization is Σbusy/(peak×wall) since the pool started, where peak
	// is the historical maximum commanded pool size — under auto control a
	// shrunk pool reads as utilization of the peak, not of the current
	// Workers count.
	Utilization float64
	// MaxBytesInFlight is the high-water mark of raw bytes submitted to the
	// pool but not yet streamed out.
	MaxBytesInFlight int64
	// Resizes counts live worker-count changes (control.Tuner activity).
	Resizes int64
}

// Stats snapshots the pool's metrics (zero value for a nil pool).
func (p *EncodePool) Stats() EncodeStats {
	if p == nil {
		return EncodeStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	end := time.Now()
	if !p.stopped.IsZero() {
		end = p.stopped
	}
	wall := end.Sub(p.start).Seconds()
	return EncodeStats{
		Workers:          p.ws.Workers(),
		Chunks:           p.chunks,
		Failures:         p.failures,
		RawBytes:         p.rawBytes,
		StoredBytes:      p.storedBytes,
		Latency:          p.latAcc.Summary(),
		Utilization:      p.ws.Utilization(wall),
		MaxBytesInFlight: p.maxInFlight,
		Resizes:          p.ws.Resizes(),
	}
}

// Emit writes the snapshot into a registry gather under the damaris_encode_*
// families — the live-scrape twin of the end-of-run encode report.
func (s EncodeStats) Emit(e *obs.Emitter, labels ...string) {
	e.Gauge("damaris_encode_workers", float64(s.Workers), labels...)
	e.Counter("damaris_encode_chunks_total", float64(s.Chunks), labels...)
	e.Counter("damaris_encode_failures_total", float64(s.Failures), labels...)
	e.Counter("damaris_encode_raw_bytes_total", float64(s.RawBytes), labels...)
	e.Counter("damaris_encode_stored_bytes_total", float64(s.StoredBytes), labels...)
	e.Counter("damaris_encode_resizes_total", float64(s.Resizes), labels...)
	e.Gauge("damaris_encode_utilization", s.Utilization, labels...)
	e.Gauge("damaris_encode_bytes_in_flight_max", float64(s.MaxBytesInFlight), labels...)
	e.Summary("damaris_encode_seconds", s.Latency, labels...)
}

// WriteChunks encodes and appends a batch of chunks. With a non-nil pool the
// encodes run on the pool's workers in parallel while this goroutine streams
// completed chunks to the file in argument order — the output is
// byte-identical to a serial WriteChunk loop regardless of worker count.
// With a nil pool it is that serial loop. Outstanding encoded chunks are
// bounded to 2× the pool size, so arbitrarily large batches never hold the
// whole encoded batch in memory.
func (w *Writer) WriteChunks(metas []ChunkMeta, datas [][]byte, pool *EncodePool) error {
	if len(metas) != len(datas) {
		return fmt.Errorf("dsf: WriteChunks: %d metas for %d data buffers", len(metas), len(datas))
	}
	// Validate the whole batch before encoding anything: a malformed chunk
	// fails the call without a partial parallel encode to unwind.
	for i := range metas {
		if err := w.validateChunk(metas[i], datas[i]); err != nil {
			return err
		}
	}
	if pool == nil {
		for i := range metas {
			if err := w.WriteChunk(metas[i], datas[i]); err != nil {
				return err
			}
		}
		return nil
	}

	// The outstanding-chunk window follows the pool size at call time; a
	// concurrent Resize applies to subsequent batches.
	window := 2 * pool.Workers()
	if window < 2 {
		window = 2
	}
	if window > len(metas) {
		window = len(metas)
	}
	results := make([]chan encodeResult, len(metas))
	for i := range results {
		results[i] = make(chan encodeResult, 1)
	}
	// The window semaphore bounds chunks that are encoding or encoded but
	// not yet streamed; the submitter parks here when the streamer falls
	// behind.
	sem := make(chan struct{}, window)
	go func() {
		for i := range metas {
			sem <- struct{}{}
			pool.submit(encodeJob{
				data:     datas[i],
				codec:    metas[i].Codec,
				elemSize: metas[i].Layout.Type().Size(),
				level:    w.level,
				iter:     metas[i].Iteration,
				result:   results[i],
			}, int64(len(datas[i])))
		}
	}()

	// Stream strictly in submission order; after an error keep draining so
	// every in-flight buffer is recycled and the submitter terminates.
	var firstErr error
	for i := range metas {
		res := <-results[i]
		pool.drained(int64(len(datas[i])))
		<-sem
		switch {
		case res.err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("dsf: chunk %q: %w", metas[i].Name, res.err)
			}
		case firstErr == nil:
			firstErr = w.appendEncoded(metas[i], int64(len(datas[i])), res.ec)
		}
		res.ec.release()
	}
	return firstErr
}
