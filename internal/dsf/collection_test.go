package dsf

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"damaris/internal/layout"
)

// writeRunFiles fabricates the output of a 2-node, 3-iteration Damaris run:
// one file per node per iteration, two sources per node, one variable.
func writeRunFiles(t *testing.T, dir string) {
	t.Helper()
	lay := layout.MustNew(layout.Byte, 8)
	for node := 0; node < 2; node++ {
		for it := int64(0); it < 3; it++ {
			path := filepath.Join(dir, fmt.Sprintf("node%04d_it%06d.dsf", node, it))
			w, err := Create(path)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < 2; s++ {
				src := node*2 + s
				payload := []byte(fmt.Sprintf("n%dt%ds%d..", node, it, src))
				meta := ChunkMeta{Name: "theta", Iteration: it, Source: src, Layout: lay}
				if err := w.WriteChunk(meta, payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCollectionBasics(t *testing.T) {
	dir := t.TempDir()
	writeRunFiles(t, dir)
	c, err := OpenCollection(filepath.Join(dir, "*.dsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if len(c.Files()) != 6 {
		t.Errorf("files = %d", len(c.Files()))
	}
	if c.Len() != 12 { // 6 files x 2 chunks
		t.Errorf("chunks = %d", c.Len())
	}
	if vars := c.Variables(); len(vars) != 1 || vars[0] != "theta" {
		t.Errorf("variables = %v", vars)
	}
	its := c.Iterations()
	if len(its) != 3 || its[0] != 0 || its[2] != 2 {
		t.Errorf("iterations = %v", its)
	}
	if err := c.Verify(); err != nil {
		t.Error(err)
	}
}

func TestCollectionSelectAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	writeRunFiles(t, dir)
	c, err := OpenCollection(filepath.Join(dir, "*.dsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Iteration 1 spans two files (one per node), four sources total.
	sel := c.Select("theta", 1)
	if len(sel) != 4 {
		t.Fatalf("selected = %d, want 4", len(sel))
	}
	for want, idx := range sel {
		m, err := c.Chunk(idx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Source != want {
			t.Errorf("selection not source-ordered: got %d at %d", m.Source, want)
		}
		b, err := c.ReadChunk(idx)
		if err != nil {
			t.Fatal(err)
		}
		wantPayload := fmt.Sprintf("n%dt1s%d..", want/2, want)
		if string(b) != wantPayload {
			t.Errorf("payload = %q, want %q", b, wantPayload)
		}
	}
	if sel := c.Select("ghost", 0); sel != nil {
		t.Errorf("unknown variable selected %v", sel)
	}
}

func TestCollectionErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenCollection(filepath.Join(dir, "*.dsf")); err == nil {
		t.Error("empty glob should fail")
	}
	if _, err := OpenFiles(nil); err == nil {
		t.Error("empty list should fail")
	}
	// One valid and one corrupt member: open must fail and not leak.
	writeRunFiles(t, dir)
	bad := filepath.Join(dir, "zzz_bad.dsf")
	if err := writeGarbage(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCollection(filepath.Join(dir, "*.dsf")); err == nil {
		t.Error("corrupt member should fail the collection")
	}

	c, err := OpenCollection(filepath.Join(dir, "node*.dsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Chunk(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := c.ReadChunk(c.Len()); err == nil {
		t.Error("out-of-range read should fail")
	}
}

func writeGarbage(path string) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	// Truncate away the footer to corrupt it.
	return truncateFile(path, 10)
}

func truncateFile(path string, drop int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, st.Size()-drop)
}
