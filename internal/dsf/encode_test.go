package dsf

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"damaris/internal/layout"
	"damaris/internal/mpi"
)

// testChunks builds a mixed-codec batch of float32 chunks with smooth,
// compressible content.
func testChunks(n int, elems int64) ([]ChunkMeta, [][]byte) {
	lay := layout.MustNew(layout.Float32, elems)
	metas := make([]ChunkMeta, n)
	datas := make([][]byte, n)
	codecs := []Codec{ShuffleGzip, Gzip, None}
	for c := 0; c < n; c++ {
		xs := make([]float32, elems)
		for i := range xs {
			xs[i] = 280 + float32(c) + 5*float32(math.Sin(float64(i)/300))
		}
		metas[c] = ChunkMeta{
			Name:      fmt.Sprintf("var%d", c%3),
			Iteration: int64(c / 3),
			Source:    c,
			Layout:    lay,
			Codec:     codecs[c%len(codecs)],
		}
		datas[c] = mpi.Float32sToBytes(xs)
	}
	return metas, datas
}

func writeWithWorkers(t *testing.T, path string, metas []ChunkMeta, datas [][]byte, workers int) {
	t.Helper()
	pool := NewEncodePool(workers)
	defer pool.Close()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("writer", "determinism-test")
	w.SetAttribute("node", "0")
	if err := w.WriteChunks(metas, datas, pool); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// The golden-file determinism guarantee: a ShuffleGzip-heavy DSF written
// with encode_workers ∈ {0, 1, 4} is byte-identical, and every variant
// round-trips through Verify/ReadChunk.
func TestWriteChunksDeterministicAcrossWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	metas, datas := testChunks(12, 4096)
	golden := filepath.Join(dir, "serial.dsf")
	writeWithWorkers(t, golden, metas, datas, 0)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		path := filepath.Join(dir, fmt.Sprintf("workers%d.dsf", workers))
		writeWithWorkers(t, path, metas, datas, workers)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file written with %d encode workers differs from serial output (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Verify(); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		for i := range metas {
			b, err := r.ReadChunk(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, datas[i]) {
				t.Errorf("workers=%d: chunk %d payload mismatch", workers, i)
			}
		}
		r.Close()
	}
}

// Two files with identical chunks and attributes must be byte-identical —
// in particular the TOC attribute encoding must not depend on map iteration
// order.
func TestTOCEncodingDeterministic(t *testing.T) {
	dir := t.TempDir()
	metas, datas := testChunks(3, 256)
	var prev []byte
	for round := 0; round < 5; round++ {
		path := filepath.Join(dir, fmt.Sprintf("r%d.dsf", round))
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range [][2]string{{"writer", "x"}, {"node", "3"}, {"unit", "K"}, {"model", "cm1"}} {
			w.SetAttribute(kv[0], kv[1])
		}
		if err := w.WriteChunks(metas, datas, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(b, prev) {
			t.Fatalf("round %d produced different bytes for identical content", round)
		}
		prev = b
	}
}

func TestWriteChunksValidation(t *testing.T) {
	dir := t.TempDir()
	metas, datas := testChunks(4, 64)
	w, err := Create(filepath.Join(dir, "v.dsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteChunks(metas, datas[:3], nil); err == nil {
		t.Error("mismatched metas/datas lengths should fail")
	}
	bad := append([]ChunkMeta(nil), metas...)
	bad[2].Name = ""
	if err := w.WriteChunks(bad, datas, nil); err == nil {
		t.Error("invalid chunk in batch should fail")
	}
	if w.StoredBytes() != 0 {
		t.Errorf("failed batch wrote %d bytes; validation must reject before streaming", w.StoredBytes())
	}
	bad = append([]ChunkMeta(nil), metas...)
	bad[1].Codec = Codec(42)
	pool := NewEncodePool(2)
	defer pool.Close()
	if err := w.WriteChunks(bad, datas, pool); err == nil {
		t.Error("unknown codec in pooled batch should fail")
	}
}

// A shared pool serves concurrent writers (the multi-writer persistence
// pipeline) without mixing up their files.
func TestEncodePoolSharedAcrossWriters(t *testing.T) {
	dir := t.TempDir()
	pool := NewEncodePool(4)
	defer pool.Close()
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	paths := make([]string, writers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			metas, datas := testChunks(9, 2048)
			for i := range metas {
				metas[i].Source = 100*wi + i // distinct tuples per file
			}
			paths[wi] = filepath.Join(dir, fmt.Sprintf("w%d.dsf", wi))
			w, err := Create(paths[wi])
			if err != nil {
				errs[wi] = err
				return
			}
			if err := w.WriteChunks(metas, datas, pool); err != nil {
				errs[wi] = err
				w.Close()
				return
			}
			errs[wi] = w.Close()
		}(wi)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", wi, err)
		}
		r, err := Open(paths[wi])
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Verify(); err != nil {
			t.Errorf("writer %d: %v", wi, err)
		}
		for _, m := range r.Chunks() {
			if m.Source/100 != wi {
				t.Errorf("writer %d file holds chunk from writer %d", wi, m.Source/100)
			}
		}
		r.Close()
	}
	st := pool.Stats()
	if st.Workers != 4 || st.Chunks != 4*9 || st.Failures != 0 {
		t.Errorf("pool stats = %+v", st)
	}
	if st.Latency.N != int(st.Chunks) || st.RawBytes == 0 || st.StoredBytes == 0 {
		t.Errorf("pool accounting incomplete: %+v", st)
	}
	if st.MaxBytesInFlight <= 0 {
		t.Errorf("MaxBytesInFlight = %d", st.MaxBytesInFlight)
	}
}

func TestEncodePoolNilSafe(t *testing.T) {
	var p *EncodePool
	if p.Workers() != 0 {
		t.Error("nil pool Workers should be 0")
	}
	if st := p.Stats(); st.Workers != 0 || st.Chunks != 0 {
		t.Errorf("nil pool stats = %+v", st)
	}
	p.Close() // must not panic
	if NewEncodePool(0) != nil || NewEncodePool(-3) != nil {
		t.Error("non-positive worker counts should return the nil pool")
	}
}

// The writer's gzip level must actually reach the deflate stage: the full
// stdlib range is accepted and levels order output sizes as expected.
func TestWriterGzipLevel(t *testing.T) {
	dir := t.TempDir()
	metas, datas := testChunks(1, 1<<14)
	metas[0].Codec = Gzip
	size := func(level int) int64 {
		path := filepath.Join(dir, fmt.Sprintf("l%d.dsf", level))
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SetGzipLevel(level); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteChunk(metas[0], datas[0]); err != nil {
			t.Fatal(err)
		}
		stored := w.StoredBytes()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Verify(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		return stored
	}
	raw := int64(len(datas[0]))
	if stored := size(gzip.NoCompression); stored <= raw {
		t.Errorf("NoCompression stored %d <= raw %d; level 0 must mean store", stored, raw)
	}
	if size(gzip.HuffmanOnly) <= size(gzip.BestCompression) {
		t.Error("HuffmanOnly should compress worse than BestCompression")
	}
	w, _ := Create(filepath.Join(dir, "bad.dsf"))
	defer w.Close()
	if err := w.SetGzipLevel(42); err == nil {
		t.Error("invalid gzip level should fail")
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: the encode hot path, serial vs pooled (alloc win) and with
// parallel workers (throughput win on multicore).

// benchChunkBytes is one benchmark chunk: 1 MiB of smooth float32 data.
const benchChunkElems = 1 << 18

func benchData() []byte {
	xs := make([]float32, benchChunkElems)
	for i := range xs {
		xs[i] = 300 + 10*float32(math.Sin(float64(i)/700))
	}
	return mpi.Float32sToBytes(xs)
}

// BenchmarkEncodeChunkNaive is the seed's per-chunk encode: a fresh shuffle
// buffer, a fresh gzip.Writer and a growing bytes.Buffer per call — the
// allocation behavior this PR removes. Kept as the allocs/op baseline.
func BenchmarkEncodeChunkNaive(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := len(data) / 4
		sh := make([]byte, len(data))
		for e := 0; e < n; e++ {
			for j := 0; j < 4; j++ {
				sh[j*n+e] = data[e*4+j]
			}
		}
		var out bytes.Buffer
		gw, err := gzip.NewWriterLevel(&out, gzip.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gw.Write(sh); err != nil {
			b.Fatal(err)
		}
		if err := gw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeChunkPooled is the same ShuffleGzip encode through the
// pooled path WriteChunk/WriteChunks use.
func BenchmarkEncodeChunkPooled(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec, err := encodeChunk(data, ShuffleGzip, 4, gzip.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		ec.release()
	}
}

// benchWriteChunks persists one 8-chunk ShuffleGzip batch per iteration
// through WriteChunks with the given encode worker count (0 = serial).
func benchWriteChunks(b *testing.B, workers int) {
	dir := b.TempDir()
	metas, datas := testChunks(8, benchChunkElems)
	for i := range metas {
		metas[i].Codec = ShuffleGzip
	}
	var total int64
	for _, d := range datas {
		total += int64(len(d))
	}
	pool := NewEncodePool(workers)
	defer pool.Close()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("b%03d.dsf", i%16))
		w, err := Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteChunks(metas, datas, pool); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = os.RemoveAll(dir)
}

func BenchmarkEncodeWriteChunksSerial(b *testing.B)   { benchWriteChunks(b, 0) }
func BenchmarkEncodeWriteChunksWorkers2(b *testing.B) { benchWriteChunks(b, 2) }
func BenchmarkEncodeWriteChunksWorkers4(b *testing.B) { benchWriteChunks(b, 4) }
