package dsf

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"damaris/internal/layout"
)

// resizeWorkload builds a batch of compressible chunks.
func resizeWorkload(t *testing.T, chunks int) ([]ChunkMeta, [][]byte) {
	t.Helper()
	l, err := layout.New(layout.Float32, 256)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]ChunkMeta, chunks)
	datas := make([][]byte, chunks)
	for i := range metas {
		metas[i] = ChunkMeta{Name: "v", Iteration: int64(i), Source: i, Layout: l, Codec: ShuffleGzip}
		data := make([]byte, l.Bytes())
		for j := range data {
			data[j] = byte(i + j%7)
		}
		datas[i] = data
	}
	return metas, datas
}

// encodeTo writes the workload through a pool into a buffer.
func encodeTo(t *testing.T, pool *EncodePool, metas []ChunkMeta, datas [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunks(metas, datas, pool); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Output bytes are identical across any live resize sequence — the property
// the control plane's determinism invariant rests on.
func TestEncodePoolResizeDeterministic(t *testing.T) {
	metas, datas := resizeWorkload(t, 64)

	ref := encodeTo(t, nil, metas, datas) // serial baseline

	pool := NewEncodePool(2)
	defer pool.Close()
	for round, n := range []int{1, 4, 2, 7, 1, 3} {
		pool.Resize(n)
		if got := pool.Workers(); got != n {
			t.Fatalf("round %d: Workers() = %d after Resize(%d)", round, got, n)
		}
		if got := encodeTo(t, pool, metas, datas); !bytes.Equal(got, ref) {
			t.Fatalf("round %d (workers=%d): output differs from serial baseline", round, n)
		}
	}
	if st := pool.Stats(); st.Resizes == 0 {
		t.Fatalf("Resizes = %d, want the live resizes counted", st.Resizes)
	}
}

// Resizing while WriteChunks batches are in flight must not lose, duplicate
// or reorder chunks (run under -race in CI).
func TestEncodePoolResizeConcurrentWithWrites(t *testing.T) {
	metas, datas := resizeWorkload(t, 32)
	ref := encodeTo(t, nil, metas, datas)

	pool := NewEncodePool(2)
	defer pool.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 3, 2, 5, 4, 1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pool.Resize(sizes[i%len(sizes)])
		}
	}()

	var werr error
	var once sync.Once
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 10; i++ {
				var buf bytes.Buffer
				wr, err := NewWriter(&buf)
				if err == nil {
					err = wr.WriteChunks(metas, datas, pool)
				}
				if err == nil {
					err = wr.Close()
				}
				if err == nil && !bytes.Equal(buf.Bytes(), ref) {
					err = fmt.Errorf("iteration %d: output differs under concurrent resize", i)
				}
				if err != nil {
					once.Do(func() { werr = err })
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
}

// Resize floors at one worker and ignores nil pools.
func TestEncodePoolResizeBounds(t *testing.T) {
	var nilPool *EncodePool
	nilPool.Resize(4) // must not panic
	if nilPool.Workers() != 0 {
		t.Fatal("nil pool has workers")
	}

	pool := NewEncodePool(3)
	defer pool.Close()
	pool.Resize(0)
	if got := pool.Workers(); got != 1 {
		t.Fatalf("Resize(0) left %d workers, want the floor of 1", got)
	}
	metas, datas := resizeWorkload(t, 8)
	if got := encodeTo(t, pool, metas, datas); len(got) == 0 {
		t.Fatal("single-worker pool produced no output")
	}
}
