package dsf

import (
	"os"
	"path/filepath"
	"testing"
)

// writeBatchedFile writes one multi-iteration file shaped like the
// pipeline's PersistBatch output: chunks of several iterations and sources
// interleaved in one DSF.
func writeBatchedFile(t *testing.T, path string) {
	t.Helper()
	metas, datas := testChunks(12, 2048) // iterations 0..3 × 3 variables
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("writer", "crash-test")
	if err := w.WriteChunks(metas, datas, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// A writer killed mid-batch leaves a file with no footer; Open must detect
// the truncation at every possible kill point of a multi-iteration file —
// mid-header, mid-chunk, chunk boundaries, mid-TOC, mid-footer — exactly as
// it does for single-iteration files.
func TestBatchedFileTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.dsf")
	writeBatchedFile(t, good)
	full, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Chunks()); got != 12 {
		t.Fatalf("batched file has %d chunks, want 12", got)
	}
	if its := map[int64]bool{}; true {
		for _, m := range r.Chunks() {
			its[m.Iteration] = true
		}
		if len(its) != 4 {
			t.Fatalf("batched file spans %d iterations, want 4", len(its))
		}
	}
	r.Close()

	// Every strict prefix must fail to open: the footer is written last, so
	// any kill point loses it. Step through the file densely enough to hit
	// header, several chunk interiors and boundaries, the TOC and the
	// footer region.
	cuts := []int{0, 1, 7, 8, 9}
	for cut := 64; cut < len(full); cut += len(full) / 97 {
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(full)-24, len(full)-23, len(full)-8, len(full)-1)
	p := filepath.Join(dir, "cut.dsf")
	for _, cut := range cuts {
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); err == nil {
			t.Fatalf("file truncated to %d/%d bytes opened without error", cut, len(full))
		}
	}
}

// A writer that dies without Close (the in-process "kill") leaves no footer
// regardless of how much chunk data the OS received; reopening must fail,
// not read garbage.
func TestAbortedWriterDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "aborted.dsf")
	// Write well past the bufio buffer so real chunk bytes reach the file,
	// then abandon the writer without Close — footer and TOC never land.
	metas, datas := testChunks(6, 128<<10)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunks(metas, datas, nil); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= int64(len(headMagic)) {
		t.Fatalf("expected buffered writer to have spilled chunk bytes, file is %d bytes", st.Size())
	}
	if _, err := Open(path); err == nil {
		t.Error("file from aborted writer should fail to open")
	}
	// The leaked fd is closed by the test process exiting; a crashed
	// process would be no different.
}
