package dsf

import (
	"bytes"
	"encoding/binary"
	"testing"

	"damaris/internal/layout"
	"damaris/internal/mpi"
)

// fuzzSeedFile builds a small valid DSF stream in memory.
func fuzzSeedFile(tb testing.TB, codec Codec) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	w.SetAttribute("writer", "fuzz-seed")
	lay := layout.MustNew(layout.Float32, 32)
	xs := make([]float32, 32)
	for i := range xs {
		xs[i] = float32(i) * 0.25
	}
	for it := int64(0); it < 2; it++ {
		meta := ChunkMeta{Name: "theta", Iteration: it, Source: 3, Layout: lay, Codec: codec}
		if err := w.WriteChunk(meta, mpi.Float32sToBytes(xs)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTOCDecode drives OpenReaderAt — header, footer and TOC decoding —
// with arbitrary bytes. The invariant is totality: corrupt input must
// produce an error, never a panic, a huge TOC-driven allocation, or a
// reader whose chunks lie outside the stream. Inputs that do open must
// read and verify without panicking.
func FuzzTOCDecode(f *testing.F) {
	for _, codec := range []Codec{None, Gzip, ShuffleGzip} {
		valid := fuzzSeedFile(f, codec)
		f.Add(valid)
		// Truncations and bit flips around the structurally interesting
		// offsets: header, mid-payload, footer.
		f.Add(valid[:8])
		f.Add(valid[:len(valid)/2])
		f.Add(valid[:len(valid)-1])
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)-20] ^= 0xff // TOC offset field
		f.Add(flipped)
		reindexed := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(reindexed[len(reindexed)-24:], 1<<60) // absurd TOC offset
		f.Add(reindexed)
	}
	f.Add([]byte("DSFv0002"))
	f.Add([]byte("DSFINDEX"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected: exactly what corrupt input should get
		}
		// An accepted stream must be fully traversable without panics; a
		// checksum/decode error is fine (the fuzzer may luck into a
		// consistent TOC over garbage payload).
		for i, m := range r.Chunks() {
			if m.Stored < 0 || m.RawSize < 0 {
				t.Fatalf("chunk %d accepted with negative sizes: %+v", i, m)
			}
			_, _ = r.ReadChunk(i)
		}
		_ = r.Attributes()
		_ = r.Verify()
	})
}
