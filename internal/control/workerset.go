package control

// WorkerSet is the slot bookkeeping shared by the live-resizable worker
// pools the control plane commands (the persist pipeline's writers, the
// DSF encode pool). It owns the invariants both pools need:
//
//   - slots are never reused: a stopping worker may still be draining its
//     in-flight batch when the next resize lands, so a resurrected slot
//     would let two goroutines share one identity and double-count both
//     concurrency and busy time. Each grown worker gets a fresh slot.
//   - shrink stops the newest workers first (LIFO), by closing their stop
//     channels; the worker is expected to exit between work items.
//   - utilization is measured against the historical peak commanded count,
//     so Σbusy/(peak×wall) stays meaningful across shrink/grow cycles
//     (dividing by slots-ever-started would deflate it with every resize).
//
// A WorkerSet is not internally locked: the owning pool guards it with the
// same mutex that guards its other counters.
type WorkerSet struct {
	workers int
	peak    int
	stops   []chan struct{} // one slot per worker ever started; nil once stopped
	active  []int           // slot indices of commanded workers, in start order
	busy    []float64       // per-slot seconds spent working
	resizes int64
}

// Resize moves the commanded worker count to n (floored at 1), calling
// start(slot, stop) for each fresh slot on grow and closing the newest
// workers' stop channels on shrink. The first call (from zero workers) is
// construction and is not counted as a resize. Returns whether anything
// changed.
func (ws *WorkerSet) Resize(n int, start func(slot int, stop chan struct{})) bool {
	if n < 1 {
		n = 1
	}
	if n == ws.workers {
		return false
	}
	if ws.workers > 0 {
		ws.resizes++
	}
	for ws.workers > n {
		idx := ws.active[len(ws.active)-1]
		ws.active = ws.active[:len(ws.active)-1]
		close(ws.stops[idx])
		ws.stops[idx] = nil
		ws.workers--
	}
	for ws.workers < n {
		slot := len(ws.stops)
		stop := make(chan struct{})
		ws.stops = append(ws.stops, stop)
		ws.busy = append(ws.busy, 0)
		ws.active = append(ws.active, slot)
		ws.workers++
		if ws.workers > ws.peak {
			ws.peak = ws.workers
		}
		start(slot, stop)
	}
	return true
}

// Workers returns the commanded worker count.
func (ws *WorkerSet) Workers() int { return ws.workers }

// Peak returns the historical maximum commanded count.
func (ws *WorkerSet) Peak() int { return ws.peak }

// Resizes returns how many times the commanded count changed after
// construction.
func (ws *WorkerSet) Resizes() int64 { return ws.resizes }

// AddBusy charges seconds of work to a slot.
func (ws *WorkerSet) AddBusy(slot int, seconds float64) { ws.busy[slot] += seconds }

// Busy returns a copy of the per-slot busy seconds (one entry per worker
// ever started).
func (ws *WorkerSet) Busy() []float64 { return append([]float64(nil), ws.busy...) }

// Utilization returns Σbusy/(peak×wall): time spent working relative to
// the historical peak pool running for the whole wall interval.
func (ws *WorkerSet) Utilization(wall float64) float64 {
	if ws.peak == 0 || wall <= 0 {
		return 0
	}
	var sum float64
	for _, b := range ws.busy {
		sum += b
	}
	return sum / (float64(ws.peak) * wall)
}
