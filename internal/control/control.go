// Package control is the adaptive control plane that unifies the pipeline's
// static sizing knobs — persist writer count, flow-window depth and encode
// pool size — into one feedback-tuned subsystem.
//
// The paper's dedicated-core design absorbs I/O jitter only when the
// write-behind window, writer pool and encode pool are sized to what the
// storage can actually absorb. Those used to be three static config knobs
// (`persist_workers`, `persist_queue_depth`, `encode_workers`); TASIO-style
// task-aware I/O runtimes instead adapt concurrency to observed storage
// latency. The Tuner here consumes the per-stage telemetry the pipeline
// already exports (flush latency, encode latency, queue depth, store put
// latency, aggregation ring occupancy) and periodically re-sizes all three
// knobs between iterations:
//
//   - the flow window opens only as far as the observed
//     flush-latency/iteration-interval ratio warrants — a window deeper than
//     ceil(latency/interval)+1 only grows pinned shared memory without hiding
//     any more latency, while a shallower one re-couples clients to storage;
//   - the writer pool tracks the same ratio (one writer per concurrently
//     in-flight flush), shrinking toward the synchronous baseline (one
//     writer, window 1) when storage is fast;
//   - the encode pool grows only while encoding — not the store — is the
//     bottleneck (encode latency above store put latency), and shrinks back
//     when the streamer is what limits throughput;
//   - a saturated aggregation fan-in ring vetoes window growth: opening the
//     client window into a full ring would only move the queueing, not hide
//     it.
//
// The controller is deterministic: decisions are a pure function of the
// sample sequence and the injected clock, with no randomness and no
// dependence on goroutine scheduling. It only ever changes *when* work
// overlaps — worker counts and window depths — never output bytes: every
// consumer (EncodePool, the persist pipeline, the aggregation merge) is
// already byte-deterministic across worker counts, so any decision sequence
// produces identical DSF/object output.
package control

import (
	"fmt"
	"math"
	"sync"
	"time"

	"damaris/internal/obs"
)

// Clock abstracts time so tests, benches and the simulator can drive the
// controller deterministically without real sleeping.
type Clock interface {
	Now() time.Time
}

// realClock is the wall-clock implementation.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall-clock Clock used outside tests.
func RealClock() Clock { return realClock{} }

// ManualClock is a hand-advanced Clock for deterministic tests and the
// simulator. The zero value starts at the zero time; Advance moves it.
type ManualClock struct{ t time.Time }

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock { return &ManualClock{t: t} }

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time { return c.t }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// Sizes is one concurrency configuration of the pipeline: the three knobs
// the controller owns.
type Sizes struct {
	// Writers is the persist writer pool size (>= 1 under the pipeline).
	Writers int
	// Window is the client flow-window depth (also the useful queue depth).
	Window int
	// Encode is the chunk-encode pool size (0 = serial, no pool to resize).
	Encode int
}

// Limits bounds every dimension the Tuner may move. Min values below 1 are
// treated as 1 (0 Encode minimum means the encode dimension may rest at the
// pool floor of one worker but the tuner never tears the pool down).
type Limits struct {
	MaxWriters int
	MaxWindow  int
	MaxEncode  int
}

// Default bounds applied when a Limits field is zero.
const (
	DefaultMaxWriters = 8
	DefaultMaxWindow  = 16
	DefaultMaxEncode  = 8
	// DefaultInterval is the minimum time between controller decisions; the
	// tuner folds every observation into its smoothed state but re-sizes at
	// most once per interval, so resizing cost stays off the per-iteration
	// path.
	DefaultInterval = 250 * time.Millisecond
	// DefaultAlpha is the EWMA smoothing factor applied to samples: high
	// enough to follow genuine latency regime changes within a few
	// observations, low enough that a single outlier (or an oscillating
	// fault injector) cannot swing a decision on its own.
	DefaultAlpha = 0.3
	// ringVetoFill is the aggregation fan-in occupancy fraction above which
	// window growth is vetoed (the ring, not the client window, is the
	// bottleneck then).
	ringVetoFill = 0.75
	// pressureFill is the queue-depth/window fraction above which the
	// controller treats clients as durability-gated and keeps opening even
	// though the flush/interval ratio has plateaued (backpressure makes
	// completions arrive at the flush rate, hiding how slow the store is).
	pressureFill = 0.75
)

// Sample is one telemetry observation, taken at an iteration boundary. All
// latencies are seconds; zero fields mean "no signal" and leave the
// corresponding smoothed state untouched.
type Sample struct {
	// FlushLatency is the most recent iteration's submit→durable seconds.
	FlushLatency float64
	// Interval is the seconds between the last two iteration completions on
	// the event loop — the compute interval the flush must hide inside.
	Interval float64
	// EncodeLatency is the per-chunk encode seconds (pool mean).
	EncodeLatency float64
	// StoreLatency is the per-op store put seconds (backend mean).
	StoreLatency float64
	// QueueDepth is the pipeline's mean in-flight iteration count.
	QueueDepth float64
	// RingFill is the aggregation fan-in ring occupancy as a fraction of
	// its capacity; negative means "no sample this observation" (0 is a
	// real sample: an empty ring decays the saturation veto).
	RingFill float64
	// SpillActive reports that the pipeline's scratch-spill path holds
	// iterations awaiting replay — the backend cannot keep up and the node
	// is running in degraded mode. Unlike the latency fields this is a
	// direct state bit, not smoothed: the veto must engage the moment
	// spilling starts and release the moment the backlog drains.
	SpillActive bool
}

// Config describes one Tuner.
type Config struct {
	// Mode is "static" (every Observe is a no-op — byte-for-byte the
	// pre-control behavior) or "auto".
	Mode string
	// Initial is the starting configuration (the static config's sizes).
	Initial Sizes
	// Limits bounds the tunable range; zero fields select the defaults.
	Limits Limits
	// Interval is the minimum time between decisions (0 = DefaultInterval).
	Interval time.Duration
	// Alpha is the EWMA smoothing factor in (0,1] (0 = DefaultAlpha).
	Alpha float64
	// Clock injects time; nil selects the wall clock.
	Clock Clock
	// Budget is the node's spare-core budget (GOMAXPROCS − clients, or an
	// explicit override) shared by shard event loops, persist writers, and
	// encode workers. 0 disables budgeting (the pre-sharding behavior).
	// With a budget set, initial sizes are trimmed to fit and decide()
	// vetoes any growth that would push Writers+Encode+Reserved past it.
	Budget int
	// Reserved is the portion of Budget already committed to shard event
	// loops; the tuner divides only the remainder between writers and
	// encode workers.
	Reserved int
}

// Stats is a snapshot of the controller's activity, surfaced through
// core.PipelineStats and reported by cmd/damaris-run.
type Stats struct {
	// Mode echoes the configuration ("static" or "auto").
	Mode string
	// Decisions counts decision points evaluated; Resizes those that changed
	// at least one size.
	Decisions, Resizes int64
	// Steady is the consecutive decisions without a change — the convergence
	// signal (the bench's settle criterion).
	Steady int64
	// Sizes is the current effective configuration.
	Sizes Sizes
	// Limits echoes the tunable bounds (for reports).
	Limits Limits
	// Ratio is the smoothed flush-latency/iteration-interval ratio driving
	// the window and writer targets.
	Ratio float64
	// Degraded reports that the last observation carried an active spill
	// backlog: the node is shedding load to local scratch and the tuner is
	// vetoing window growth until the backlog drains.
	Degraded bool
	// DegradedDecisions counts decision points evaluated while degraded.
	DegradedDecisions int64
	// Budget and Reserved echo the spare-core budget configuration (0
	// budget = budgeting off); BudgetVetoes counts decisions where growth
	// was pulled back because Writers+Encode+Reserved would have exceeded
	// the budget.
	Budget, Reserved int
	BudgetVetoes     int64
}

// Emit writes the snapshot into a registry gather under the
// damaris_control_* families, mode carried as a label.
func (s Stats) Emit(e *obs.Emitter, labels ...string) {
	ls := labels
	if s.Mode != "" {
		ls = append([]string{"mode", s.Mode}, labels...)
	}
	e.Counter("damaris_control_decisions_total", float64(s.Decisions), ls...)
	e.Counter("damaris_control_resizes_total", float64(s.Resizes), ls...)
	e.Counter("damaris_control_degraded_decisions_total", float64(s.DegradedDecisions), ls...)
	e.Gauge("damaris_control_steady", float64(s.Steady), ls...)
	e.Gauge("damaris_control_ratio", s.Ratio, ls...)
	var deg float64
	if s.Degraded {
		deg = 1
	}
	e.Gauge("damaris_control_degraded", deg, ls...)
	e.Gauge("damaris_control_writers", float64(s.Sizes.Writers), ls...)
	e.Gauge("damaris_control_window", float64(s.Sizes.Window), ls...)
	e.Gauge("damaris_control_encode", float64(s.Sizes.Encode), ls...)
	e.Gauge("damaris_control_budget", float64(s.Budget), ls...)
	e.Gauge("damaris_control_reserved", float64(s.Reserved), ls...)
	e.Counter("damaris_control_budget_vetoes_total", float64(s.BudgetVetoes), ls...)
}

// Tuner is the feedback controller. Observe is driven from a single
// goroutine (the dedicated core's event loop, at iteration boundaries);
// Stats and Sizes may be read concurrently from any goroutine.
type Tuner struct {
	mode     string
	limits   Limits
	interval time.Duration
	alpha    float64
	clock    Clock

	budget   int // spare-core budget (0 = unlimited)
	reserved int // cores committed to shard event loops

	mu        sync.Mutex
	cur       Sizes
	vetoes    int64     // budget growth vetoes
	last      time.Time // last decision instant
	started   bool
	flush     ewma
	gap       ewma
	encode    ewma
	store     ewma
	ring      ewma
	depth     ewma
	decisions int64
	resizes   int64
	steady    int64
	degraded  bool
	degrDecs  int64
	// Previous decision's wanted direction per dimension (-1, 0, +1): a size
	// moves only when two consecutive decisions agree, so a smoothed ratio
	// straddling an integer boundary (alternating targets n, n+1) parks
	// instead of oscillating forever.
	dirWriters, dirWindow, dirEncode int
}

// ewma is a deterministic exponentially weighted moving average that
// initializes on its first sample.
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) add(x, alpha float64) {
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v += alpha * (x - e.v)
}

// New builds a Tuner. Mode "static" returns a controller whose Observe never
// changes anything; mode "auto" activates the feedback law.
func New(cfg Config) (*Tuner, error) {
	switch cfg.Mode {
	case "", "static":
		cfg.Mode = "static"
	case "auto":
	default:
		return nil, fmt.Errorf("control: unknown mode %q (want static or auto)", cfg.Mode)
	}
	lim := cfg.Limits
	if lim.MaxWriters == 0 {
		lim.MaxWriters = DefaultMaxWriters
	}
	if lim.MaxWindow == 0 {
		lim.MaxWindow = DefaultMaxWindow
	}
	if lim.MaxEncode == 0 {
		lim.MaxEncode = DefaultMaxEncode
	}
	if lim.MaxWriters < 1 || lim.MaxWindow < 1 || lim.MaxEncode < 0 {
		return nil, fmt.Errorf("control: invalid limits %+v", lim)
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("control: negative decision interval %v", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("control: alpha %v outside (0,1]", cfg.Alpha)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Budget < 0 || cfg.Reserved < 0 || cfg.Reserved > cfg.Budget && cfg.Budget > 0 {
		return nil, fmt.Errorf("control: invalid spare-core budget %d (reserved %d)", cfg.Budget, cfg.Reserved)
	}
	ini := cfg.Initial
	if ini.Writers < 1 {
		ini.Writers = 1
	}
	if ini.Window < 1 {
		ini.Window = 1
	}
	if ini.Writers > lim.MaxWriters {
		ini.Writers = lim.MaxWriters
	}
	if ini.Window > lim.MaxWindow {
		ini.Window = lim.MaxWindow
	}
	if ini.Encode > lim.MaxEncode {
		ini.Encode = lim.MaxEncode
	}
	if cfg.Budget > 0 {
		// Trim the starting sizes to the spare-core budget so even static
		// mode never launches oversubscribed: shed encode workers first
		// (the write path keeps priority), then writers down to the floor
		// of one.
		for ini.Encode > 0 && ini.Writers+ini.Encode+cfg.Reserved > cfg.Budget {
			ini.Encode--
		}
		for ini.Writers > 1 && ini.Writers+ini.Encode+cfg.Reserved > cfg.Budget {
			ini.Writers--
		}
	}
	return &Tuner{
		mode:     cfg.Mode,
		limits:   lim,
		interval: cfg.Interval,
		alpha:    cfg.Alpha,
		clock:    cfg.Clock,
		budget:   cfg.Budget,
		reserved: cfg.Reserved,
		cur:      ini,
	}, nil
}

// Mode returns "static" or "auto" ("static" for a nil Tuner).
func (t *Tuner) Mode() string {
	if t == nil {
		return "static"
	}
	return t.mode
}

// Sizes returns the current effective configuration.
func (t *Tuner) Sizes() Sizes {
	if t == nil {
		return Sizes{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Limits returns the effective bounds.
func (t *Tuner) Limits() Limits {
	if t == nil {
		return Limits{}
	}
	return t.limits
}

// Observe folds one telemetry sample into the controller's smoothed state
// and, at most once per decision interval, moves each size one step toward
// its feedback target. It returns the effective sizes and whether this call
// changed them. Static mode (and a nil Tuner) always returns (initial,
// false).
func (t *Tuner) Observe(s Sample) (Sizes, bool) {
	if t == nil {
		return Sizes{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mode != "auto" {
		return t.cur, false
	}
	if s.FlushLatency > 0 {
		t.flush.add(s.FlushLatency, t.alpha)
	}
	if s.Interval > 0 {
		t.gap.add(s.Interval, t.alpha)
	}
	if s.EncodeLatency > 0 {
		t.encode.add(s.EncodeLatency, t.alpha)
	}
	if s.StoreLatency > 0 {
		t.store.add(s.StoreLatency, t.alpha)
	}
	if s.QueueDepth > 0 {
		t.depth.add(s.QueueDepth, t.alpha)
	}
	if s.RingFill >= 0 {
		t.ring.add(s.RingFill, t.alpha)
	}
	t.degraded = s.SpillActive

	now := t.clock.Now()
	if !t.started {
		// First observation anchors the decision clock; deciding on a single
		// raw sample would let startup noise pick the initial direction.
		t.started = true
		t.last = now
		return t.cur, false
	}
	if now.Sub(t.last) < t.interval {
		return t.cur, false
	}
	t.last = now
	return t.decide()
}

// decide computes the feedback targets from the smoothed state and moves the
// current sizes one step toward them. Single-step moves plus EWMA smoothing
// are the oscillation damper: an alternating fault injector converges to the
// smoothed fixed point instead of chasing each spike.
func (t *Tuner) decide() (Sizes, bool) {
	t.decisions++
	if t.degraded {
		t.degrDecs++
	}
	next := t.cur

	if t.flush.set && t.gap.set && t.gap.v > 0 {
		ratio := t.flush.v / t.gap.v
		// The window must cover the iterations that complete while one flush
		// is in flight, plus the one being filled: ceil(ratio)+1. A fast
		// store (ratio → 0) collapses this to the synchronous baseline's
		// window of 1... +1 headroom only once flushes outlast an interval.
		targetWindow := clamp(int(math.Ceil(ratio))+1, 1, t.limits.MaxWindow)
		if ratio < 0.5 {
			targetWindow = 1
		}
		targetWriters := clamp(int(math.Ceil(ratio)), 1, t.limits.MaxWriters)
		// Backpressure assist: the ratio alone can plateau near 1 under a
		// tight window — when clients are gated on durability, iteration
		// completions arrive at the flush rate, so flush/interval stops
		// rising no matter how slow the store is. A queue sitting near the
		// current window is the tell: clients are blocked, so keep opening
		// (one step per decision, still clamped and ring-vetoed below)
		// until either the queue drains or the bounds stop us.
		if t.depth.set && ratio >= 0.75 &&
			t.depth.v >= pressureFill*float64(t.cur.Window) {
			if targetWindow <= t.cur.Window {
				targetWindow = clamp(t.cur.Window+1, 1, t.limits.MaxWindow)
			}
			if targetWriters <= t.cur.Writers {
				targetWriters = clamp(t.cur.Writers+1, 1, t.limits.MaxWriters)
			}
		}
		// A saturated aggregation fan-in ring means the leader — not client
		// admission — is the bottleneck: hold (or pull back) the window
		// rather than queueing more epochs behind the merge.
		if t.ring.v >= ringVetoFill && targetWindow > t.cur.Window {
			targetWindow = t.cur.Window
		}
		// Degraded mode (spill backlog awaiting replay) vetoes growth the
		// same way: the backend is already underwater, and a wider window
		// would admit client data faster than the drainer can replay it —
		// growing the scratch file without hiding any latency.
		if t.degraded && targetWindow > t.cur.Window {
			targetWindow = t.cur.Window
		}
		// One writer per concurrently in-flight flush keeps the pool exactly
		// as parallel as the latency it must hide; capped by the post-veto
		// window — more writers than in-flight iterations can only idle.
		if targetWriters > targetWindow {
			targetWriters = targetWindow
		}
		next.Window = step(t.cur.Window, targetWindow, &t.dirWindow)
		next.Writers = step(t.cur.Writers, targetWriters, &t.dirWriters)
	}

	if t.cur.Encode > 0 && t.encode.set && t.store.set {
		// Grow the encode pool only while encoding outweighs the store put —
		// more compressors than the streamer can drain just pin buffers.
		target := t.cur.Encode
		if t.encode.v > t.store.v {
			target = t.cur.Encode + 1
		} else if t.encode.v < t.store.v/2 {
			target = t.cur.Encode - 1
		}
		next.Encode = step(t.cur.Encode, clamp(target, 1, t.limits.MaxEncode), &t.dirEncode)
	}

	// Spare-core budget veto: growth that would push the worker total past
	// the node's spare cores is pulled back (encode first — the write path
	// keeps priority). Moves are one step per decision, so reverting the
	// grown dimensions always lands back within the previous usage; the
	// budget never forces a shrink below a configuration that already fit.
	if t.budget > 0 {
		used := next.Writers + next.Encode + t.reserved
		if used > t.budget {
			vetoed := false
			if next.Encode > t.cur.Encode {
				used -= next.Encode - t.cur.Encode
				next.Encode = t.cur.Encode
				vetoed = true
			}
			if used > t.budget && next.Writers > t.cur.Writers {
				next.Writers = t.cur.Writers
				vetoed = true
			}
			if vetoed {
				t.vetoes++
			}
		}
	}

	changed := next != t.cur
	if changed {
		t.resizes++
		t.steady = 0
	} else {
		t.steady++
	}
	t.cur = next
	return t.cur, changed
}

// Stats snapshots the controller's counters (zero value for nil).
func (t *Tuner) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{
		Mode:              t.mode,
		Decisions:         t.decisions,
		Resizes:           t.resizes,
		Steady:            t.steady,
		Sizes:             t.cur,
		Limits:            t.limits,
		Degraded:          t.degraded,
		DegradedDecisions: t.degrDecs,
		Budget:            t.budget,
		Reserved:          t.reserved,
		BudgetVetoes:      t.vetoes,
	}
	if t.flush.set && t.gap.set && t.gap.v > 0 {
		st.Ratio = t.flush.v / t.gap.v
	}
	return st
}

// clamp bounds v to [lo,hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// step moves cur one unit toward target, but only when this decision's
// direction matches the previous one's (stored in *prev) — the hysteresis
// that parks a size whose target alternates across an integer boundary.
func step(cur, target int, prev *int) int {
	dir := 0
	switch {
	case target > cur:
		dir = 1
	case target < cur:
		dir = -1
	}
	agreed := dir != 0 && dir == *prev
	*prev = dir
	if !agreed {
		return cur
	}
	return cur + dir
}
