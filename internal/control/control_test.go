package control

import (
	"fmt"
	"testing"
	"time"
)

// drive feeds n identical-cadence samples, one per decision interval, drawn
// from latencies cycled in order.
func drive(t *testing.T, tn *Tuner, clk *ManualClock, latencies []float64, interval float64, n int) []Sizes {
	t.Helper()
	out := make([]Sizes, 0, n)
	for i := 0; i < n; i++ {
		clk.Advance(DefaultInterval)
		s, _ := tn.Observe(Sample{
			FlushLatency: latencies[i%len(latencies)],
			Interval:     interval,
		})
		out = append(out, s)
	}
	return out
}

func newAuto(t *testing.T, clk Clock, ini Sizes, lim Limits) *Tuner {
	t.Helper()
	tn, err := New(Config{Mode: "auto", Initial: ini, Limits: lim, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestStaticModeNeverMoves(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn, err := New(Config{Mode: "static", Initial: Sizes{Writers: 3, Window: 5, Encode: 2}, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		clk.Advance(time.Second)
		s, changed := tn.Observe(Sample{FlushLatency: 10, Interval: 0.001})
		if changed {
			t.Fatal("static tuner changed sizes")
		}
		if s != (Sizes{Writers: 3, Window: 5, Encode: 2}) {
			t.Fatalf("static sizes drifted to %+v", s)
		}
	}
	if st := tn.Stats(); st.Resizes != 0 || st.Mode != "static" {
		t.Fatalf("static stats = %+v", st)
	}
}

func TestNilTunerIsStatic(t *testing.T) {
	var tn *Tuner
	if tn.Mode() != "static" {
		t.Fatalf("nil mode = %q", tn.Mode())
	}
	if s, changed := tn.Observe(Sample{FlushLatency: 1}); changed || s != (Sizes{}) {
		t.Fatalf("nil Observe = %+v %v", s, changed)
	}
	if st := tn.Stats(); st.Decisions != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}

// Slow storage: flush latency far above the iteration interval must open the
// window and writer pool up to the bounds, never past them.
func TestSlowStoreOpensToBounds(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	lim := Limits{MaxWriters: 4, MaxWindow: 6, MaxEncode: 4}
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 1}, lim)
	sizes := drive(t, tn, clk, []float64{0.100}, 0.005, 40)
	last := sizes[len(sizes)-1]
	if last.Writers != lim.MaxWriters || last.Window != lim.MaxWindow {
		t.Fatalf("slow store settled at %+v, want writers=%d window=%d", last, lim.MaxWriters, lim.MaxWindow)
	}
	for _, s := range sizes {
		if s.Writers < 1 || s.Writers > lim.MaxWriters || s.Window < 1 || s.Window > lim.MaxWindow {
			t.Fatalf("sizes %+v escaped limits %+v", s, lim)
		}
	}
}

// Fast storage: the controller must shrink toward the synchronous baseline
// (one writer, window 1).
func TestFastStoreShrinksToBaseline(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 6, Window: 8}, Limits{MaxWriters: 8, MaxWindow: 8})
	sizes := drive(t, tn, clk, []float64{0.0001}, 0.050, 40)
	last := sizes[len(sizes)-1]
	if last.Writers != 1 || last.Window != 1 {
		t.Fatalf("fast store settled at %+v, want the synchronous baseline 1/1", last)
	}
}

// Oscillating injected latency (the store.Fault pattern) must settle: the
// EWMA plus single-step moves converge to the smoothed fixed point instead
// of chasing each spike.
func TestOscillatingLatencyConverges(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	lim := Limits{MaxWriters: 8, MaxWindow: 12, MaxEncode: 4}
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 1}, lim)
	// Alternating 20ms/60ms flushes against a 10ms interval: smoothed ratio
	// sits near 4, so the window should settle at 5 and writers at 4.
	sizes := drive(t, tn, clk, []float64{0.020, 0.060}, 0.010, 80)
	last := sizes[len(sizes)-1]
	for _, s := range sizes[len(sizes)-20:] {
		if s != last {
			t.Fatalf("sizes still moving near the end: %+v vs %+v", s, last)
		}
	}
	if last.Window < 4 || last.Window > 6 || last.Writers < 3 || last.Writers > 5 {
		t.Fatalf("oscillating latency settled at %+v, want window≈5 writers≈4", last)
	}
	if st := tn.Stats(); st.Steady < 19 {
		t.Fatalf("Steady = %d, want the settled tail counted", st.Steady)
	}
}

// The controller is a pure function of the sample+clock sequence: two tuners
// fed identically must produce identical decision sequences.
func TestDeterministicDecisions(t *testing.T) {
	run := func() []Sizes {
		clk := NewManualClock(time.Unix(0, 0))
		tn := newAuto(t, clk, Sizes{Writers: 2, Window: 2, Encode: 2}, Limits{})
		var out []Sizes
		lats := []float64{0.030, 0.010, 0.080, 0.002}
		for i := 0; i < 60; i++ {
			clk.Advance(100 * time.Millisecond)
			s, _ := tn.Observe(Sample{
				FlushLatency:  lats[i%len(lats)],
				Interval:      0.008,
				EncodeLatency: 0.004,
				StoreLatency:  0.002,
				RingFill:      float64(i%3) / 4,
			})
			out = append(out, s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Encode pool: grows while encoding dominates the store put, shrinks when
// the streamer dominates, and never tears the pool down below one worker.
func TestEncodeFeedback(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 1, Encode: 2}, Limits{MaxEncode: 4})
	obs := func(enc, put float64, n int) Sizes {
		var s Sizes
		for i := 0; i < n; i++ {
			clk.Advance(DefaultInterval)
			s, _ = tn.Observe(Sample{FlushLatency: 0.001, Interval: 0.010,
				EncodeLatency: enc, StoreLatency: put})
		}
		return s
	}
	if s := obs(0.010, 0.001, 20); s.Encode != 4 {
		t.Fatalf("encode-bound workload settled at %d encode workers, want the cap 4", s.Encode)
	}
	if s := obs(0.0001, 0.010, 40); s.Encode != 1 {
		t.Fatalf("store-bound workload settled at %d encode workers, want the floor 1", s.Encode)
	}
}

// A serial deployment (Encode 0) has no pool to resize: the encode dimension
// must stay untouched.
func TestEncodeDimensionOffStaysOff(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 1, Encode: 0}, Limits{})
	for i := 0; i < 20; i++ {
		clk.Advance(DefaultInterval)
		s, _ := tn.Observe(Sample{FlushLatency: 0.05, Interval: 0.001,
			EncodeLatency: 0.1, StoreLatency: 0.001})
		if s.Encode != 0 {
			t.Fatalf("encode dimension moved to %d with no pool", s.Encode)
		}
	}
}

// A saturated aggregation fan-in ring vetoes window growth: queueing more
// epochs behind a slow merge hides nothing.
func TestRingSaturationVetoesWindowGrowth(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 2}, Limits{MaxWindow: 10, MaxWriters: 10})
	for i := 0; i < 30; i++ {
		clk.Advance(DefaultInterval)
		s, _ := tn.Observe(Sample{FlushLatency: 0.100, Interval: 0.001, RingFill: 1})
		if s.Window > 2 {
			t.Fatalf("window grew to %d behind a saturated ring", s.Window)
		}
	}
	// Ring drains: the same latency regime may now open the window.
	var s Sizes
	for i := 0; i < 30; i++ {
		clk.Advance(DefaultInterval)
		s, _ = tn.Observe(Sample{FlushLatency: 0.100, Interval: 0.001, RingFill: 0})
	}
	if s.Window <= 2 {
		t.Fatalf("window stuck at %d after the ring drained", s.Window)
	}
}

// An active spill backlog (degraded mode) vetoes window growth exactly like
// a saturated ring, reports Degraded, and releases the moment the backlog
// drains.
func TestDegradedModeVetoesWindowGrowth(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 2}, Limits{MaxWindow: 10, MaxWriters: 10})
	for i := 0; i < 30; i++ {
		clk.Advance(DefaultInterval)
		s, _ := tn.Observe(Sample{FlushLatency: 0.100, Interval: 0.001, RingFill: -1, SpillActive: true})
		if s.Window > 2 {
			t.Fatalf("window grew to %d while spilling", s.Window)
		}
	}
	st := tn.Stats()
	if !st.Degraded {
		t.Fatal("Stats.Degraded false while spill active")
	}
	if st.DegradedDecisions == 0 {
		t.Fatal("no degraded decisions counted")
	}
	// Backlog drains: the same latency regime may now open the window.
	var s Sizes
	for i := 0; i < 30; i++ {
		clk.Advance(DefaultInterval)
		s, _ = tn.Observe(Sample{FlushLatency: 0.100, Interval: 0.001, RingFill: -1})
	}
	if s.Window <= 2 {
		t.Fatalf("window stuck at %d after the spill drained", s.Window)
	}
	if st := tn.Stats(); st.Degraded {
		t.Fatal("Stats.Degraded stuck after drain")
	}
}

// Decisions are rate-limited to the configured interval even when every
// iteration observes.
func TestDecisionRateLimit(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn, err := New(Config{Mode: "auto", Initial: Sizes{Writers: 1, Window: 1},
		Interval: time.Second, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for i := 0; i < 100; i++ {
		clk.Advance(100 * time.Millisecond) // 10 observations per decision window
		if _, changed := tn.Observe(Sample{FlushLatency: 1, Interval: 0.001}); changed {
			changes++
		}
	}
	st := tn.Stats()
	if st.Decisions > 10 {
		t.Fatalf("%d decisions over 10 decision windows", st.Decisions)
	}
	if changes == 0 {
		t.Fatal("no resize despite a 1000x latency/interval ratio")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: "banana"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := New(Config{Mode: "auto", Interval: -time.Second}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := New(Config{Mode: "auto", Alpha: 2}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := New(Config{Mode: "auto", Limits: Limits{MaxEncode: -1}}); err == nil {
		t.Fatal("negative encode cap accepted")
	}
	// Initial sizes above the limits are clamped, not rejected: the static
	// config stays valid when auto mode narrows the range.
	tn, err := New(Config{Mode: "auto", Initial: Sizes{Writers: 99, Window: 99, Encode: 99},
		Limits: Limits{MaxWriters: 2, MaxWindow: 3, MaxEncode: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s := tn.Sizes(); s != (Sizes{Writers: 2, Window: 3, Encode: 1}) {
		t.Fatalf("clamped initial = %+v", s)
	}
}

// Observe on the steady path must not allocate: it runs on the dedicated
// core's event loop every iteration.
func TestObserveDoesNotAllocate(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	tn := newAuto(t, clk, Sizes{Writers: 1, Window: 1, Encode: 1}, Limits{})
	sample := Sample{FlushLatency: 0.01, Interval: 0.01, EncodeLatency: 0.001, StoreLatency: 0.001}
	allocs := testing.AllocsPerRun(200, func() {
		clk.Advance(DefaultInterval)
		tn.Observe(sample)
	})
	if allocs > 0 {
		t.Fatalf("Observe allocates %.1f/op", allocs)
	}
}

// WorkerSet: slots are never reused across shrink/grow cycles, and
// utilization is measured against the historical peak commanded count, not
// slots-ever-started.
func TestWorkerSetSlotsAndUtilization(t *testing.T) {
	var ws WorkerSet
	var started []int
	start := func(slot int, stop chan struct{}) { started = append(started, slot) }

	if changed := ws.Resize(2, start); !changed || ws.Workers() != 2 || ws.Peak() != 2 {
		t.Fatalf("construction: workers=%d peak=%d changed=%v", ws.Workers(), ws.Peak(), changed)
	}
	if ws.Resizes() != 0 {
		t.Fatalf("construction counted as resize: %d", ws.Resizes())
	}
	ws.Resize(1, start) // shrink: stops slot 1
	ws.Resize(3, start) // grow: fresh slots 2,3 — slot 1 must not restart
	if got, want := fmt.Sprint(started), "[0 1 2 3]"; got != want {
		t.Fatalf("started slots %v, want %v (no reuse)", got, want)
	}
	if ws.Workers() != 3 || ws.Peak() != 3 || ws.Resizes() != 2 {
		t.Fatalf("after cycles: workers=%d peak=%d resizes=%d", ws.Workers(), ws.Peak(), ws.Resizes())
	}
	if len(ws.Busy()) != 4 {
		t.Fatalf("busy slots = %d, want one per worker ever started", len(ws.Busy()))
	}

	// Fully busy peak-sized pool over the wall interval reads 100%, even
	// though 4 slots ever started.
	for slot := 0; slot < 4; slot++ {
		ws.AddBusy(slot, 7.5) // 4 slots x 7.5s = 30s = peak(3) x wall(10)
	}
	if u := ws.Utilization(10); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0 against peak", u)
	}
	if u := ws.Utilization(0); u != 0 {
		t.Fatalf("zero wall utilization = %v", u)
	}
	if ws.Resize(0, start); ws.Workers() != 1 {
		t.Fatalf("Resize(0) left %d workers, want the floor of 1", ws.Workers())
	}
}
