// pipeline demonstrates the dedicated core's asynchronous write-behind
// persistence pipeline: the same workload runs against a deliberately slow
// persister three times — synchronous baseline, single writer, and four
// writers with a deep queue — showing client-side iteration time decouple
// from persist latency exactly as the paper promises for dedicated-core
// I/O ("the time to write […] becomes the time of a copy in shared
// memory", §IV-B), and the pipeline's batching amortize the persister's
// fixed per-call cost.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/metadata"
	"damaris/internal/mpi"
	"damaris/internal/stats"
)

const (
	ranks        = 8
	coresPerNode = 8 // one node: 7 clients + 1 dedicated core
	iterations   = 30
	persistDelay = 10 * time.Millisecond // fixed cost per durable call
)

// slowPersister models a persistency layer dominated by fixed per-call
// latency (file creation, fsync, parallel-file-system round trip). It
// implements both the per-iteration and the batched path, so the pipeline
// can amortize the cost across queued iterations.
type slowPersister struct {
	mu    sync.Mutex
	calls int
	iters int
}

func (p *slowPersister) note(iters int) {
	time.Sleep(persistDelay)
	p.mu.Lock()
	p.calls++
	p.iters += iters
	p.mu.Unlock()
}

func (p *slowPersister) Persist(int64, []*metadata.Entry) error {
	p.note(1)
	return nil
}

func (p *slowPersister) PersistBatch(batch []core.IterationBatch) error {
	p.note(len(batch))
	return nil
}

func run(workers, queue int) (clientPhase stats.Summary, ps core.PipelineStats, calls int) {
	cfgXML := fmt.Sprintf(`
<simulation>
  <buffer size="33554432" cores="1"/>
  <pipeline workers="%d" queue="%d"/>
  <layout name="field" type="real" dimensions="128,128"/>
  <variable name="theta" layout="field"/>
</simulation>`, workers, queue)
	cfg, err := config.ParseString(cfgXML)
	if err != nil {
		log.Fatal(err)
	}
	pers := &slowPersister{}
	var mu sync.Mutex
	var phases []float64
	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{Persister: pers})
		if err != nil {
			log.Fatal(err)
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			ps = dep.Server.PipelineStats()
			mu.Unlock()
			return
		}
		cli := dep.Client
		data := make([]float32, 128*128)
		for i := range data {
			data[i] = float32(cli.Source())
		}
		for it := int64(0); it < iterations; it++ {
			start := time.Now()
			if err := cli.WriteFloat32s("theta", it, data); err != nil {
				log.Fatal(err)
			}
			if err := cli.EndIteration(it); err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			phases = append(phases, time.Since(start).Seconds())
			mu.Unlock()
		}
		_ = cli.Finalize()
	})
	if err != nil {
		log.Fatal(err)
	}
	return stats.Summarize(phases), ps, pers.calls
}

func main() {
	fmt.Printf("— write-behind persistence pipeline: %d clients x %d iterations, %v per durable call —\n",
		ranks-1, iterations, persistDelay)
	configs := []struct {
		label          string
		workers, queue int
	}{
		{"synchronous baseline", 0, 1},
		{"1 writer, queue 4", 1, 4},
		{"4 writers, queue 16", 4, 16},
	}
	var base float64
	for _, c := range configs {
		phase, ps, calls := run(c.workers, c.queue)
		total := float64(phase.N) / float64(ranks-1) * phase.Mean
		if base == 0 {
			base = total
		}
		fmt.Printf("\n  %s:\n", c.label)
		fmt.Printf("    client iteration: mean=%.2fms max=%.2fms (total %.0fms, %.1fx vs sync)\n",
			phase.Mean*1e3, phase.Max*1e3, total*1e3, base/total)
		fmt.Printf("    persister: %d durable calls for %d iterations\n", calls, iterations)
		if c.workers > 0 {
			fmt.Printf("    pipeline: queue depth mean=%.1f max=%d; flush latency mean=%.1fms; "+
				"writer utilization %.0f%%; batch mean=%.1f\n",
				ps.Depth.Mean, ps.MaxInFlight, ps.FlushLatency.Mean*1e3,
				100*ps.Utilization, ps.BatchSize.Mean)
		}
	}
	fmt.Println("\nThe event loop hands completed iterations to writer goroutines through a")
	fmt.Println("bounded queue; clients re-couple to I/O latency only when the queue fills.")
}
