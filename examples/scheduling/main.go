// scheduling demonstrates the paper's §IV-D communication-free transfer
// scheduling twice over:
//
//  1. on the simulated Kraken, reproducing the 9.7 -> 13.1 GB/s apparent
//     throughput lift at 2304 cores, and
//  2. on the real middleware, using the schedule.SlotScheduler to stagger
//     dedicated-core flushes so concurrent nodes never write together.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"damaris/internal/cluster"
	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/iostrat"
	"damaris/internal/mpi"
	"damaris/internal/schedule"
	"damaris/internal/stats"
)

func main() {
	simulated()
	real()
}

func simulated() {
	plat := cluster.Kraken()
	fmt.Println("— simulated Kraken, 2304 cores (paper §IV-D: 9.7 -> 13.1 GB/s) —")
	for _, v := range []struct {
		label string
		sched bool
	}{{"unscheduled", false}, {"slot-scheduled", true}} {
		rs, err := iostrat.Phases("damaris", plat,
			iostrat.Options{Cores: 2304, Seed: 11, Scheduling: v.sched}, 5)
		if err != nil {
			log.Fatal(err)
		}
		agg := stats.Mean(iostrat.AggregateBps(rs))
		var busy []float64
		for _, r := range rs {
			busy = append(busy, stats.Mean(r.DedicatedBusySeconds))
		}
		fmt.Printf("  %-15s apparent throughput %.1f GB/s, per-node write %.1fs\n",
			v.label, agg/1e9, stats.Mean(busy))
	}
}

// real runs the actual middleware with a SlotScheduler driving each
// dedicated core. With 4 nodes, node k's flush waits for slot k of the
// estimated compute interval, so flushes never collide on the (shared,
// local-disk) "file system".
func real() {
	const (
		ranks        = 8
		coresPerNode = 2 // 4 nodes: 1 client + 1 dedicated core each
		steps        = 6
		outputEvery  = 2
	)
	computeRanks := ranks / coresPerNode
	params := cm1.DefaultParams(computeRanks, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 64<<20, "mutex", 1))
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	starts := make(map[int]time.Time)

	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		nodes := ranks / coresPerNode
		sched, err := schedule.New(comm.Node(), nodes, 200*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := core.Deploy(comm, cfg, nil, core.Options{
			Persister: &core.NullPersister{},
			Scheduler: recordingScheduler{sched, comm.Node(), &mu, starts},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				log.Fatal(err)
			}
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			log.Fatal(err)
		}
		backend := cm1.NewDamarisBackend(dep.Client)
		if _, err := cm1.Run(sim, backend, steps, outputEvery); err != nil {
			log.Fatal(err)
		}
		if err := backend.Close(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— real middleware, 4 nodes, slot-scheduled dedicated-core flushes —")
	var t0 time.Time
	for _, t := range starts {
		if t0.IsZero() || t.Before(t0) {
			t0 = t
		}
	}
	for node := 0; node < 4; node++ {
		if t, ok := starts[node]; ok {
			fmt.Printf("  node %d first flush at +%4dms (slot width 50ms)\n",
				node, t.Sub(t0).Milliseconds())
		}
	}
}

// recordingScheduler wraps a SlotScheduler to record when each node's first
// flush actually started.
type recordingScheduler struct {
	s      *schedule.SlotScheduler
	node   int
	mu     *sync.Mutex
	starts map[int]time.Time
}

func (r recordingScheduler) WaitTurn(it int64) {
	r.s.WaitTurn(it)
	r.mu.Lock()
	if _, seen := r.starts[r.node]; !seen {
		r.starts[r.node] = time.Now()
	}
	r.mu.Unlock()
}
