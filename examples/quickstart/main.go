// Quickstart: the minimal Damaris program, mirroring the paper's §III-D
// Fortran example — initialize, write a 3D array, raise an event, finalize.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/mpi"
)

// The configuration is the paper's XML example: a layout, a variable bound
// to it, and an event mapped to an action. Here the action is the built-in
// "stats" plugin instead of a .so file.
const configXML = `
<simulation>
  <buffer size="16777216" allocator="mutex" cores="1"/>
  <layout name="my_layout" type="real" dimensions="64,16,2" language="fortran"/>
  <variable name="my_variable" layout="my_layout"/>
  <event name="my_event" action="stats" using="builtin" scope="global"/>
</simulation>`

func main() {
	cfg, err := config.ParseString(configXML)
	if err != nil {
		log.Fatal(err)
	}
	outDir, err := os.MkdirTemp("", "damaris-quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// A 4-core SMP node: 3 compute cores + 1 dedicated I/O core.
	err = mpi.Run(4, 4, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{OutputDir: outDir})
		if err != nil {
			log.Fatal(err)
		}

		if !dep.IsClient() {
			// The dedicated core: pulls events, catalogs datasets, runs
			// actions, persists iterations — all off the compute cores'
			// critical path.
			if err := dep.Server.Run(); err != nil {
				log.Fatal(err)
			}
			if v := dep.Server.Engine().Context().Value("stats:my_variable"); v != nil {
				mm := v.([3]float64)
				fmt.Printf("dedicated core computed stats: min=%.1f max=%.1f mean=%.2f\n",
					mm[0], mm[1], mm[2])
			}
			return
		}

		// A compute core: df_write + df_signal + end-of-iteration.
		cli := dep.Client
		data := make([]float32, 64*16*2)
		for i := range data {
			data[i] = float32(cli.Source()*1000 + i)
		}
		if err := cli.WriteFloat32s("my_variable", 0, data); err != nil {
			log.Fatal(err)
		}
		if err := cli.Signal("my_event", 0); err != nil {
			log.Fatal(err)
		}
		if err := cli.EndIteration(0); err != nil {
			log.Fatal(err)
		}
		ws := cli.WriteStats()
		fmt.Printf("client %d: write took %.3gms (a memcpy, not an I/O wait)\n",
			cli.Source(), ws.Mean*1000)
		if err := cli.Finalize(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DSF output in", outDir)
}
