// insitu demonstrates the paper's §VI future-work direction: "a tight
// coupling between running simulations and visualization engines, enabling
// direct access to data by visualization engines (through the I/O cores)
// while the simulation is running".
//
// A custom plugin registered on the dedicated core computes the storm's
// maximum updraft *in situ* — on data still sitting in shared memory, every
// iteration, without the simulation waiting and without touching the file
// system. At the end, the per-node DSF outputs are reassembled into the
// global temperature field and rendered as an ASCII contour map.
//
// Run with: go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/layout"
	"damaris/internal/mpi"
	"damaris/internal/plugin"
	"damaris/internal/viz"
)

const (
	ranks        = 8
	coresPerNode = 4
	steps        = 16
	outputEvery  = 4
)

func main() {
	outDir, err := os.MkdirTemp("", "insitu")
	if err != nil {
		log.Fatal(err)
	}
	computeRanks := ranks - ranks/coresPerNode
	params := cm1.DefaultParams(computeRanks, 1)

	// Extend the generated configuration with the in-situ analysis event:
	// every client signals "analyze" after its writes; scope="global" makes
	// the EPE run the action once per iteration, after all of the node's
	// clients contributed.
	xml := cm1.ConfigXML(params, 64<<20, "mutex", 1)
	xml = xml[:len(xml)-len("</simulation>\n")] +
		"  <event name=\"analyze\" action=\"updraft\" scope=\"global\"/>\n</simulation>\n"
	cfg, err := config.ParseString(xml)
	if err != nil {
		log.Fatal(err)
	}

	// The in-situ plugin: assemble this node's w chunks from shared memory
	// and record the strongest updraft.
	type updraft struct {
		it    int64
		value float32
	}
	var mu sync.Mutex
	var series []updraft
	reg := plugin.NewRegistry()
	reg.MustRegister("updraft", func(ctx *plugin.Context, ev string) error {
		var chunks []viz.Chunk
		for _, e := range ctx.Store.Iteration(ctx.Iteration) {
			if e.Key.Name != "w" || !e.Global.Valid() {
				continue
			}
			chunks = append(chunks, viz.Chunk{Global: e.Global, Data: mpi.BytesToFloat32s(e.Bytes())})
		}
		if len(chunks) == 0 {
			return nil
		}
		field, err := viz.Assemble(chunks)
		if err != nil {
			return err
		}
		v, _ := viz.MaxUpdraft(field)
		mu.Lock()
		series = append(series, updraft{ctx.Iteration, v})
		mu.Unlock()
		return nil
	})

	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		pers := &core.DSFPersister{Dir: outDir, Node: comm.Node(), ServerID: comm.Rank()}
		dep, err := core.Deploy(comm, cfg, reg, core.Options{OutputDir: outDir, Persister: pers})
		if err != nil {
			log.Fatal(err)
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				log.Fatal(err)
			}
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			log.Fatal(err)
		}
		cli := dep.Client
		iteration := int64(0)
		for step := 1; step <= steps; step++ {
			sim.Step()
			if step%outputEvery == 0 {
				// Hand all fields to the dedicated core, then raise the
				// analysis event *before* EndIteration: the EPE processes
				// the queue in order, so the analysis sees the data while
				// it is still in shared memory, before the flush drops it.
				x0, y0 := sim.GlobalOffset()
				nz, ny, nx := sim.LocalShape()
				global := layout.Block{
					Start: []int64{0, int64(y0), int64(x0)},
					Count: []int64{int64(nz), int64(ny), int64(nx)},
				}
				for _, name := range cm1.VariableNames {
					xs, err := sim.Field(name)
					if err != nil {
						log.Fatal(err)
					}
					if err := cli.WriteBlock(name, iteration, mpi.Float32sToBytes(xs), global); err != nil {
						log.Fatal(err)
					}
				}
				if err := cli.Signal("analyze", iteration); err != nil {
					log.Fatal(err)
				}
				if err := cli.EndIteration(iteration); err != nil {
					log.Fatal(err)
				}
				iteration++
			}
		}
		if err := cli.Finalize(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(series, func(i, j int) bool { return series[i].it < series[j].it })
	fmt.Println("in-situ diagnostics computed on the dedicated cores (per node, per iteration):")
	for _, u := range series {
		fmt.Printf("  iteration %d: max updraft %.2f m/s\n", u.it, u.value)
	}

	// Offline pass: reassemble the final global temperature field from the
	// per-node files and render it.
	files, _ := filepath.Glob(filepath.Join(outDir, "*.dsf"))
	var chunks []viz.Chunk
	lastIt := int64(steps/outputEvery - 1)
	for _, path := range files {
		r, err := dsf.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		for i, m := range r.Chunks() {
			if m.Name != "theta" || m.Iteration != lastIt || m.Layout.Type() != layout.Float32 {
				continue
			}
			raw, err := r.ReadChunk(i)
			if err != nil {
				log.Fatal(err)
			}
			chunks = append(chunks, viz.Chunk{Global: m.Global, Data: mpi.BytesToFloat32s(raw)})
		}
		r.Close()
	}
	field, err := viz.Assemble(chunks)
	if err != nil {
		log.Fatal(err)
	}
	img, err := viz.ASCIIRender(field, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	mn, mx := field.MinMax()
	fmt.Printf("\nglobal θ at surface level, iteration %d (range %.1f–%.1f K, %v grid):\n%s",
		lastIt, mn, mx, field.Dims, img)
}
