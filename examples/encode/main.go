// encode demonstrates the persistence layer's encode/write split (paper
// §IV-D: dedicated cores spend their spare multicore parallelism on data
// transformation): the same multi-chunk ShuffleGzip iteration is written to
// DSF serially and through encode worker pools of increasing size. The
// files come out byte-identical — compression fans out across workers while
// a single streamer appends chunks in deterministic order — and on a
// multicore host the pooled writes approach disk speed because gzip no
// longer serializes behind the file.
//
// Run with: go run ./examples/encode
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"damaris/internal/dsf"
	"damaris/internal/layout"
	"damaris/internal/mpi"
)

const (
	chunks     = 16
	chunkElems = 128 << 10 // 512 KiB of float32 per chunk
)

func workload() ([]dsf.ChunkMeta, [][]byte) {
	lay := layout.MustNew(layout.Float32, chunkElems)
	metas := make([]dsf.ChunkMeta, chunks)
	datas := make([][]byte, chunks)
	for c := 0; c < chunks; c++ {
		xs := make([]float32, chunkElems)
		for i := range xs {
			xs[i] = 280 + float32(c) + 10*float32(math.Sin(float64(i)/500))
		}
		metas[c] = dsf.ChunkMeta{
			Name: "theta", Iteration: int64(c / 4), Source: c % 4,
			Layout: lay, Codec: dsf.ShuffleGzip,
		}
		datas[c] = mpi.Float32sToBytes(xs)
	}
	return metas, datas
}

func writeOnce(dir string, workers int, metas []dsf.ChunkMeta, datas [][]byte) (path string, elapsed time.Duration, st dsf.EncodeStats) {
	pool := dsf.NewEncodePool(workers)
	defer pool.Close()
	path = filepath.Join(dir, fmt.Sprintf("encode%d.dsf", workers))
	start := time.Now()
	w, err := dsf.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w.SetAttribute("writer", "encode-example")
	if err := w.WriteChunks(metas, datas, pool); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	return path, time.Since(start), pool.Stats()
}

func main() {
	dir, err := os.MkdirTemp("", "damaris-encode")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	metas, datas := workload()
	var raw int64
	for _, d := range datas {
		raw += int64(len(d))
	}
	fmt.Printf("— encode/write split: %d ShuffleGzip chunks, %.1f MiB raw —\n\n",
		chunks, float64(raw)/(1<<20))

	var golden []byte
	for _, workers := range []int{0, 1, 2, 4} {
		path, elapsed, st := writeOnce(dir, workers, metas, datas)
		b, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		identical := ""
		if golden == nil {
			golden = b
			identical = "(golden)"
		} else if bytes.Equal(b, golden) {
			identical = "byte-identical to serial"
		} else {
			identical = "DIFFERS FROM SERIAL — bug!"
		}
		label := "serial (in-writer encode)"
		if workers > 0 {
			label = fmt.Sprintf("%d encode workers", workers)
		}
		fmt.Printf("  %-26s %6.1f MB/s  %8d bytes  %s\n",
			label, float64(raw)/1e6/elapsed.Seconds(), len(b), identical)
		if workers > 0 {
			fmt.Printf("    pool: %d chunks, encode latency mean=%.2fms, utilization %.0f%%, max %.1f MiB in flight\n",
				st.Chunks, st.Latency.Mean*1e3, 100*st.Utilization,
				float64(st.MaxBytesInFlight)/(1<<20))
		}
	}

	// Prove the output is a healthy DSF regardless of worker count.
	r, err := dsf.Open(filepath.Join(dir, "encode4.dsf"))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		log.Fatal(err)
	}
	m := r.Chunks()[0]
	fmt.Printf("\nverified %d chunks; chunk 0: %d -> %d bytes (%.0f%% ratio)\n",
		len(r.Chunks()), m.RawSize, m.Stored, 100*float64(m.RawSize)/float64(m.Stored))
	fmt.Println("\nOne streamer owns the byte stream; N workers own the compression. The")
	fmt.Println("file format never sees the parallelism — output is deterministic.")
}
