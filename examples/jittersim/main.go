// jittersim reproduces the paper's headline jitter comparison (Fig. 2) on
// the simulated Kraken: the write-phase duration seen by the simulation
// under file-per-process, collective I/O and Damaris, across scales — in a
// few seconds on a laptop.
//
// Run with: go run ./examples/jittersim
package main

import (
	"fmt"
	"log"

	"damaris/internal/cluster"
	"damaris/internal/iostrat"
	"damaris/internal/stats"
)

func main() {
	plat := cluster.Kraken()
	fmt.Println("write-phase duration seen by the simulation, Kraken model")
	fmt.Println("(10 phases per point, cross-application interference on)")
	fmt.Printf("%8s  %-18s %10s %10s %10s %10s\n",
		"cores", "strategy", "avg (s)", "min (s)", "max (s)", "spread")
	for _, cores := range []int{576, 2304, 9216} {
		for _, strat := range []string{"fpp", "collective", "damaris"} {
			rs, err := iostrat.Phases(strat, plat,
				iostrat.Options{Cores: cores, Seed: 1, Interference: true}, 10)
			if err != nil {
				log.Fatal(err)
			}
			s := stats.Summarize(iostrat.ClientSeconds(rs))
			fmt.Printf("%8d  %-18s %10.2f %10.2f %10.2f %10.2f\n",
				cores, strat, s.Mean, s.Min, s.Max, s.Spread())
		}
	}

	// The per-process view inside one phase: the paper's "fastest processes
	// terminate in less than 1 sec, the slowest take more than 25 sec".
	r, err := iostrat.SimulateFPP(plat, iostrat.Options{Cores: 2304, Seed: 3, Interference: true})
	if err != nil {
		log.Fatal(err)
	}
	pp := stats.Summarize(r.PerProcessSeconds)
	fmt.Printf("\nwithin one file-per-process phase @2304 cores: fastest %.2fs, slowest %.2fs, median %.2fs\n",
		pp.Min, pp.Max, pp.Median)

	dam, err := iostrat.SimulateDamaris(plat, iostrat.Options{Cores: 2304, Seed: 3, Interference: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same phase under Damaris: every process done in %.2fs (shared-memory copies only);\n",
		dam.ClientSeconds)
	fmt.Printf("dedicated cores then write asynchronously for %.1fs of the %.0fs compute interval\n",
		stats.Mean(dam.DedicatedBusySeconds), 50*plat.IterationSeconds)
}
