// compression demonstrates the paper's §IV-D spare-time transformations on
// real CM1-like field data: lossless gzip (paper: 187% ratio) and 16-bit
// precision reduction + gzip (paper: ~600%), all computed on the dedicated
// core rather than the simulation's critical path.
//
// Run with: go run ./examples/compression
package main

import (
	"compress/gzip"
	"fmt"
	"log"

	"damaris/internal/cm1"
	"damaris/internal/mpi"
	"damaris/internal/transform"
)

func main() {
	// Generate one rank's worth of storm data by actually running the
	// mini-app for a few steps.
	var field []float32
	err := mpi.Run(1, 1, func(comm *mpi.Comm) {
		p := cm1.Params{GlobalNX: 128, GlobalNY: 128, NZ: 40, PX: 1, PY: 1,
			DT: 0.05, Kappa: 0.12, WorkFactor: 1}
		sim, err := cm1.New(comm, p)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			sim.Step()
		}
		field, err = sim.Field("theta")
		if err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	raw := mpi.Float32sToBytes(field)
	fmt.Printf("field: %d values, %d bytes raw\n", len(field), len(raw))

	// 1. Plain gzip (what HDF5's deflate filter would do). Levels follow
	// compress/gzip exactly, so the whole spectrum is reachable — from
	// HuffmanOnly (-2, fastest useful) to BestCompression (9).
	gz, err := transform.CompressGzip(raw, gzip.DefaultCompression)
	must(err)
	fmt.Printf("gzip:                     %8d bytes  ratio %.0f%%  (paper: 187%%)\n",
		len(gz), transform.Ratio(len(raw), len(gz)))
	for _, level := range []int{gzip.HuffmanOnly, gzip.BestSpeed, gzip.BestCompression} {
		lgz, err := transform.CompressGzip(raw, level)
		must(err)
		fmt.Printf("  gzip level %2d:          %8d bytes  ratio %.0f%%\n",
			level, len(lgz), transform.Ratio(len(raw), len(lgz)))
	}

	// 2. Byte-shuffle + gzip (the standard float filter stack).
	sh, err := transform.Shuffle(raw, 4)
	must(err)
	shgz, err := transform.CompressGzip(sh, gzip.DefaultCompression)
	must(err)
	fmt.Printf("shuffle+gzip:             %8d bytes  ratio %.0f%%\n",
		len(shgz), transform.Ratio(len(raw), len(shgz)))

	// 3. 16-bit precision reduction + shuffle + gzip — the paper's
	// visualization path ("the floating point precision can also be
	// reduced to 16 bits, leading to nearly 600% compression ratio").
	red := transform.ReduceFloat32To16(field)
	redSh, err := transform.Shuffle(red[20:], 2) // skip the self-describing header
	must(err)
	redGz, err := transform.CompressGzip(redSh, gzip.DefaultCompression)
	must(err)
	fmt.Printf("reduce16+shuffle+gzip:    %8d bytes  ratio %.0f%%  (paper: ~600%%)\n",
		len(redGz), transform.Ratio(len(raw), len(redGz)))

	// Verify the reduction's error bound on the real field.
	restored, err := transform.RestoreFloat32From16(red)
	must(err)
	lo, hi := field[0], field[0]
	for _, x := range field {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	bound := transform.MaxReductionError(lo, hi)
	worst := 0.0
	for i := range field {
		d := float64(restored[i] - field[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("reduction error: worst %.4g K (bound %.4g K) over [%.1f, %.1f] K\n",
		worst, bound, lo, hi)

	// 4. Min/max chunk index: the "smart action" that answers range queries
	// without touching storage.
	idx, err := transform.IndexFloat32(field, 4096)
	must(err)
	hot := transform.QueryIndex(idx, 300, 1e9) // chunks containing the warm bubble
	fmt.Printf("index: %d chunks, %d contain θ > 300 K\n", len(idx), len(hot))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
