// cm1storm runs the CM1-like thunderstorm mini-app twice — once with
// file-per-process I/O and once with Damaris dedicated cores — and compares
// the client-visible write phases, reproducing the paper's core comparison
// (§IV-C1) on a laptop-scale domain with real files.
//
// Run with: go run ./examples/cm1storm
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/mpi"
	"damaris/internal/stats"
)

const (
	ranks        = 8
	coresPerNode = 4
	steps        = 12
	outputEvery  = 4
)

func main() {
	base, err := os.MkdirTemp("", "cm1storm")
	if err != nil {
		log.Fatal(err)
	}

	fppPhases := runFPP(filepath.Join(base, "fpp"))
	damPhases, dedicated := runDamaris(filepath.Join(base, "damaris"))

	fs := stats.Summarize(fppPhases)
	ds := stats.Summarize(damPhases)
	fmt.Println("client-visible write phase (seconds):")
	fmt.Printf("  file-per-process  mean=%.4f max=%.4f spread=%.4f\n", fs.Mean, fs.Max, fs.Spread())
	fmt.Printf("  damaris           mean=%.4f max=%.4f spread=%.4f\n", ds.Mean, ds.Max, ds.Spread())
	fmt.Printf("  dedicated-core async write mean=%.4f (hidden from the simulation)\n",
		stats.Mean(dedicated))
	if ds.Mean < fs.Mean {
		fmt.Printf("  -> Damaris cut the visible write phase by %.0f%%\n", 100*(1-ds.Mean/fs.Mean))
	}

	// Count files: the paper's metadata argument (8 ranks x 3 iterations
	// files vs 2 nodes x 3 iterations).
	fppFiles, _ := filepath.Glob(filepath.Join(base, "fpp", "*.dsf"))
	damFiles, _ := filepath.Glob(filepath.Join(base, "damaris", "*.dsf"))
	fmt.Printf("files created: file-per-process=%d damaris=%d\n", len(fppFiles), len(damFiles))
	fmt.Println("output under", base)
}

func runFPP(dir string) []float64 {
	var mu sync.Mutex
	var phases []float64
	err := mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		sim, err := cm1.New(comm, cm1.DefaultParams(ranks, 1))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := cm1.Run(sim, cm1.NewFPPBackend(dir, dsf.None, comm.Rank()), steps, outputEvery)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		phases = append(phases, rep.WriteSeconds...)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	return phases
}

func runDamaris(dir string) (phases, dedicated []float64) {
	computeRanks := ranks - ranks/coresPerNode
	params := cm1.DefaultParams(computeRanks, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 64<<20, "mutex", 1))
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		pers := &core.DSFPersister{Dir: dir, Node: comm.Node(), ServerID: comm.Rank()}
		dep, err := core.Deploy(comm, cfg, nil, core.Options{OutputDir: dir, Persister: pers})
		if err != nil {
			log.Fatal(err)
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			dedicated = append(dedicated, dep.Server.WriteTimes()...)
			mu.Unlock()
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			log.Fatal(err)
		}
		backend := cm1.NewDamarisBackend(dep.Client)
		rep, err := cm1.Run(sim, backend, steps, outputEvery)
		if err != nil {
			log.Fatal(err)
		}
		if err := backend.Close(); err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		phases = append(phases, rep.WriteSeconds...)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	return phases, dedicated
}
