// Package damaris_test holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (each regenerates the
// figure's data from the simulator), plus micro-benchmarks of the real
// middleware's hot paths (shared-memory writes, event queue, compression,
// DSF persistence, CM1 stepping).
//
// Figure benchmarks take seconds per iteration, so `go test -bench=.` runs
// each once; use cmd/damaris-bench to print the actual tables.
package damaris_test

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"damaris/internal/cluster"
	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/event"
	"damaris/internal/experiment"
	"damaris/internal/iostrat"
	"damaris/internal/layout"
	"damaris/internal/metadata"
	"damaris/internal/mpi"
	"damaris/internal/shm"
	"damaris/internal/sim"
	"damaris/internal/transform"
)

// benchExperiment regenerates one paper figure/table per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiment.Run(id, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per evaluation artifact (paper §IV).

func BenchmarkFig2WritePhaseJitter(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3BluePrintVolumes(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4aScalabilityFactor(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkFig4bRunTime(b *testing.B)                { benchExperiment(b, "fig4b") }
func BenchmarkFig5aDedicatedTimeKraken(b *testing.B)    { benchExperiment(b, "fig5a") }
func BenchmarkFig5bDedicatedTimeBluePrint(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig6AggregateThroughput(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkTable1Grid5000(b *testing.B)              { benchExperiment(b, "table1") }
func BenchmarkFig7SpareTimeFeatures(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkSchedulingIVD(b *testing.B)               { benchExperiment(b, "scheduling") }
func BenchmarkModelVA(b *testing.B)                     { benchExperiment(b, "model") }

// BenchmarkCompressionRatio measures the real §IV-D transformation stack on
// CM1-like data: gzip alone, and 16-bit reduction + shuffle + gzip.
func BenchmarkCompressionRatio(b *testing.B) {
	var field []float32
	err := mpi.Run(1, 1, func(comm *mpi.Comm) {
		p := cm1.Params{GlobalNX: 96, GlobalNY: 96, NZ: 24, PX: 1, PY: 1,
			DT: 0.05, Kappa: 0.12, WorkFactor: 1}
		s, err := cm1.New(comm, p)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			s.Step()
		}
		field, _ = s.Field("theta")
	})
	if err != nil {
		b.Fatal(err)
	}
	raw := mpi.Float32sToBytes(field)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gz, err := transform.CompressGzip(raw, gzip.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		red := transform.ReduceFloat32To16(field)
		sh, err := transform.Shuffle(red[20:], 2)
		if err != nil {
			b.Fatal(err)
		}
		redGz, err := transform.CompressGzip(sh, gzip.DefaultCompression)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(transform.Ratio(len(raw), len(gz)), "gzip-ratio-%")
			b.ReportMetric(transform.Ratio(len(raw), len(redGz)), "reduce16-ratio-%")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the middleware hot paths.

// BenchmarkShmWriteMutex measures the client write path (reserve + copy +
// release) under the mutex allocator.
func BenchmarkShmWriteMutex(b *testing.B) {
	benchShmWrite(b, false)
}

// BenchmarkShmWriteLockFree measures the same path under the lock-free
// partitioned allocator.
func BenchmarkShmWriteLockFree(b *testing.B) {
	benchShmWrite(b, true)
}

func benchShmWrite(b *testing.B, lockfree bool) {
	const size = 1 << 20
	var opts []shm.Option
	if lockfree {
		opts = append(opts, shm.WithLockFree(1))
	}
	seg, err := shm.NewSegment(8*size, opts...)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := seg.Reserve(0, size)
		if err != nil {
			b.Fatal(err)
		}
		copy(blk.Data(), data)
		blk.Release()
	}
}

// BenchmarkShmContention runs 8 concurrent writers against one segment —
// the paper's all-cores-copy-at-once moment.
func BenchmarkShmContention(b *testing.B) {
	const size = 64 << 10
	seg, err := shm.NewSegment(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	b.SetBytes(size * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				blk, err := seg.ReserveWait(0, size)
				if err != nil {
					b.Error(err)
					return
				}
				copy(blk.Data(), data)
				blk.Release()
			}()
		}
		wg.Wait()
	}
}

// BenchmarkEventQueue measures push+pop through the shared queue.
func BenchmarkEventQueue(b *testing.B) {
	q := event.NewQueue()
	for i := 0; i < b.N; i++ {
		q.Push(event.Event{Kind: event.UserSignal, Iteration: int64(i)})
		if _, ok := q.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkDamarisPipeline measures a full middleware round: 3 clients
// write one variable each, the dedicated core catalogs and drops them.
func BenchmarkDamarisPipeline(b *testing.B) {
	cfgXML := `
<simulation>
  <buffer size="16777216"/>
  <layout name="l" type="real" dimensions="64,64"/>
  <variable name="v" layout="l"/>
</simulation>`
	cfg, err := config.ParseString(cfgXML)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float32, 64*64)
	b.SetBytes(int64(len(data)*4) * 3)
	b.ResetTimer()
	err = mpi.Run(4, 4, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{Persister: &core.NullPersister{}})
		if err != nil {
			b.Error(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				b.Error(err)
			}
			return
		}
		for i := 0; i < b.N; i++ {
			it := int64(i)
			if err := dep.Client.WriteFloat32s("v", it, data); err != nil {
				b.Error(err)
				return
			}
			if err := dep.Client.EndIteration(it); err != nil {
				b.Error(err)
				return
			}
		}
		_ = dep.Client.Finalize()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// slowBenchPersister sleeps a fixed latency per durable call (batched or
// not), modelling a persistency layer dominated by per-call fixed cost —
// the regime where synchronous flushing couples clients to I/O latency.
type slowBenchPersister struct{ delay time.Duration }

func (p slowBenchPersister) Persist(int64, []*metadata.Entry) error {
	time.Sleep(p.delay)
	return nil
}

func (p slowBenchPersister) PersistBatch([]core.IterationBatch) error {
	time.Sleep(p.delay)
	return nil
}

// benchPersistPipeline measures client-side iteration completion time
// against a slow persister, for a given write-behind pipeline shape.
func benchPersistPipeline(b *testing.B, workers, queue int) {
	cfgXML := fmt.Sprintf(`
<simulation>
  <buffer size="33554432"/>
  <pipeline workers="%d" queue="%d"/>
  <layout name="l" type="real" dimensions="64,64"/>
  <variable name="v" layout="l"/>
</simulation>`, workers, queue)
	cfg, err := config.ParseString(cfgXML)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float32, 64*64)
	b.ResetTimer()
	err = mpi.Run(2, 2, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil,
			core.Options{Persister: slowBenchPersister{delay: 2 * time.Millisecond}})
		if err != nil {
			b.Error(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				b.Error(err)
			}
			return
		}
		for i := 0; i < b.N; i++ {
			it := int64(i)
			if err := dep.Client.WriteFloat32s("v", it, data); err != nil {
				b.Error(err)
				return
			}
			if err := dep.Client.EndIteration(it); err != nil {
				b.Error(err)
				return
			}
		}
		// Stop timing before the final drain: the benchmark measures the
		// client-visible iteration time, not shutdown.
		b.StopTimer()
		_ = dep.Client.Finalize()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPersistPipelineSync vs BenchmarkPersistPipelineAsync4 is the
// paper's core claim made measurable: with a slow (sleeping) persister,
// the synchronous baseline couples every client iteration to the 2ms
// persist latency, while the write-behind pipeline (4 writers, queue 16,
// batched DSF-style durable calls) keeps client-side iteration completion
// independent of it — ≥5x faster per iteration on this workload.

func BenchmarkPersistPipelineSync(b *testing.B)   { benchPersistPipeline(b, 0, 1) }
func BenchmarkPersistPipelineAsync1(b *testing.B) { benchPersistPipeline(b, 1, 4) }
func BenchmarkPersistPipelineAsync4(b *testing.B) { benchPersistPipeline(b, 4, 16) }

// benchPersistDSF measures the full DSF persist hot path — encode (shuffle +
// gzip + CRC), stream, TOC, close — for one 8-chunk ShuffleGzip iteration
// per op, with the given encode worker count (0 = serial in-writer encode,
// the pre-pool baseline).
func benchPersistDSF(b *testing.B, encodeWorkers int) {
	dir := b.TempDir()
	pool := dsf.NewEncodePool(encodeWorkers)
	defer pool.Close()
	pers := &core.DSFPersister{Dir: dir, Codec: dsf.ShuffleGzip, GzipLevel: dsf.DefaultGzipLevel}
	pers.SetEncodePool(pool)
	lay := layout.MustNew(layout.Float32, 128<<10)
	var entries []*metadata.Entry
	var total int64
	for src := 0; src < 8; src++ {
		xs := make([]float32, 128<<10)
		for i := range xs {
			xs[i] = 280 + float32(src) + 8*float32(math.Sin(float64(i)/600))
		}
		data := mpi.Float32sToBytes(xs)
		total += int64(len(data))
		entries = append(entries, &metadata.Entry{
			Key:    metadata.Key{Name: "theta", Source: src},
			Layout: lay,
			Inline: data,
		})
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pers.Persist(int64(i%64), entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = os.RemoveAll(dir)
}

// The encode/write split made measurable: with gzip dominating the persist
// cost, 4 encode workers should roughly quadruple persist throughput on a
// multicore host while producing byte-identical files (serial == worker
// output is asserted by TestWriteChunksDeterministicAcrossWorkerCounts).

func BenchmarkPersistDSFShuffleGzipSerial(b *testing.B)  { benchPersistDSF(b, 0) }
func BenchmarkPersistDSFShuffleGzipEncode2(b *testing.B) { benchPersistDSF(b, 2) }
func BenchmarkPersistDSFShuffleGzipEncode4(b *testing.B) { benchPersistDSF(b, 4) }

// BenchmarkDSFWrite measures persisting one 1 MiB chunk per iteration.
func BenchmarkDSFWrite(b *testing.B) {
	dir := b.TempDir()
	lay := layout.MustNew(layout.Float32, 256, 1024)
	data := make([]byte, lay.Bytes())
	b.SetBytes(lay.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("bench%03d.dsf", i%64))
		w, err := dsf.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteChunk(dsf.ChunkMeta{Name: "v", Layout: lay}, data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = os.RemoveAll(dir)
}

// BenchmarkCM1Step measures one mini-app timestep on a per-core subdomain
// sized like the paper's Kraken runs (44x44x200).
func BenchmarkCM1Step(b *testing.B) {
	err := mpi.Run(1, 1, func(comm *mpi.Comm) {
		p := cm1.Params{GlobalNX: 44, GlobalNY: 44, NZ: 200, PX: 1, PY: 1,
			DT: 0.05, Kappa: 0.12, WorkFactor: 1}
		s, err := cm1.New(comm, p)
		if err != nil {
			b.Error(err)
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimPhase9216 measures simulating one full 9,216-core
// file-per-process write phase (the scale that motivated the O(log n) link).
func BenchmarkSimPhase9216(b *testing.B) {
	plat := cluster.Kraken()
	for i := 0; i < b.N; i++ {
		if _, err := iostrat.SimulateFPP(plat, iostrat.Options{Cores: 9216, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw event throughput of the calendar.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(1, tick)
		}
	}
	eng.After(1, tick)
	eng.Run()
	if n == 0 {
		b.Fatal("no events ran")
	}
}

// Ablation benchmarks (extensions beyond the paper's figures).

func BenchmarkAblationRatio(b *testing.B)   { benchExperiment(b, "ratio") }
func BenchmarkAblationStripes(b *testing.B) { benchExperiment(b, "stripes") }

// BenchmarkTransportSharedMemory vs BenchmarkTransportKernelPipe reproduces
// the paper's §V-B comparison with FUSE-based designs: "such a FUSE
// interface is about 10 times slower in transferring data than using shared
// memory". The pipe pushes every byte through the kernel twice (write +
// read), as a FUSE round trip does; the shared segment is one user-space
// copy.

func BenchmarkTransportSharedMemory(b *testing.B) {
	const size = 1 << 20
	seg, err := shm.NewSegment(4 * size)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := seg.Reserve(0, size)
		if err != nil {
			b.Fatal(err)
		}
		copy(blk.Data(), payload)
		blk.Release()
	}
}

func BenchmarkTransportKernelPipe(b *testing.B) {
	const size = 1 << 20
	r, w, err := os.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	payload := make([]byte, size)
	sink := make([]byte, size)
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := io.ReadFull(r, sink); err != nil {
				done <- err
				return
			}
		}
	}()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
	<-done
}
