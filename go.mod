module damaris

go 1.24
