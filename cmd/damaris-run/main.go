// Command damaris-run executes the real middleware pipeline: the CM1-like
// mini-app on an in-process MPI world with one dedicated I/O core per node,
// writing DSF files through Damaris — or through the file-per-process /
// collective baselines for comparison.
//
// Usage:
//
//	damaris-run -ranks 12 -cores-per-node 4 -steps 20 -output-every 5 -out /tmp/out
//	damaris-run -backend fpp ...
//	damaris-run -backend collective ...
//	damaris-run -persist-backend obj:///tmp/objects -store-part-size 1048576
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/mpi"
	"damaris/internal/obs"
	"damaris/internal/stats"
	"damaris/internal/store"
	"damaris/internal/transform"
)

func main() {
	var (
		ranks        = flag.Int("ranks", 12, "total ranks (cores) in the world")
		coresPerNode = flag.Int("cores-per-node", 4, "SMP node width")
		steps        = flag.Int("steps", 20, "simulation timesteps")
		outputEvery  = flag.Int("output-every", 5, "write phase every K steps")
		outDir       = flag.String("out", "damaris-out", "output directory")
		backend      = flag.String("backend", "damaris", "damaris | fpp | collective")
		compress     = flag.Bool("compress", false, "gzip chunks (damaris and fpp)")
		bufMB        = flag.Int64("buffer-mb", 64, "per-node shared buffer (MiB)")
		allocator    = flag.String("allocator", "mutex", "shared-memory allocator: mutex | lockfree")
		persistWork  = flag.Int("persist-workers", config.DefaultPersistWorkers,
			"write-behind persist workers per dedicated core (0 = synchronous baseline)")
		persistQueue = flag.Int("persist-queue", config.DefaultPersistQueueDepth,
			"in-flight iteration queue depth (also the client flow window when async)")
		encodeWork = flag.Int("encode-workers", config.DefaultEncodeWorkers,
			"parallel chunk-encode workers per dedicated core (0 = serial encoding)")
		gzipLevel = flag.Int("gzip-level", config.DefaultPersistGzipLevel,
			"gzip level for compressed chunks, full compress/gzip range -2 (HuffmanOnly) to 9")
		persistBackend = flag.String("persist-backend", "",
			"storage backend URL for the damaris persistency layer (file://dir | obj://dir; empty = DSF files in -out)")
		storePartSize = flag.Int64("store-part-size", 0,
			"object-store multipart split in bytes (0 = backend default)")
		storePutTimeout = flag.Int("store-put-timeout", 0,
			"per-part put deadline in milliseconds; a hung target converts to a retryable timeout (0 = no deadline)")
		spillDir = flag.String("spill-dir", "",
			"local scratch directory for degraded-mode spill; empty disables (see docs/resilience.md)")
		spillAfter = flag.Int("spill-after", config.DefaultSpillAfter,
			"consecutive backpressured iterations before the event loop spills to scratch")
		storePutWorkers = flag.Int("store-put-workers", 0,
			"bounded parallel part-upload pool size (0 = backend default)")
		aggregate = flag.String("aggregate", "off",
			"aggregation tier in front of the storage backend: off (one DSF stream per dedicated core) | core (one object per node per epoch) | node (Damaris 2: one object per epoch via a dedicated aggregator node)")
		aggregateRing = flag.Int("aggregate-ring", 0,
			"fan-in ring depth between sibling dedicated cores and the aggregation leader (0 = default)")
		controlMode = flag.String("control", "static",
			"adaptive control plane: static (the sizing knobs above are final) | auto (feedback-tune persist workers, flow window and encode pool from observed latency; the knobs become the starting point)")
		controlInterval = flag.Int("control-interval-ms", 0,
			"minimum milliseconds between controller decisions (0 = default)")
		controlMaxWorkers = flag.Int("control-max-workers", 0,
			"auto-control upper bound on persist workers (0 = default)")
		controlMaxWindow = flag.Int("control-max-window", 0,
			"auto-control upper bound on the flow-window depth (0 = default)")
		controlMaxEncode = flag.Int("control-max-encode", 0,
			"auto-control upper bound on encode workers (0 = default)")
		shards = flag.Int("shards", 0,
			"event-loop shards per dedicated core (0 or 1 = the classic single loop)")
		shardsMode = flag.String("shards-mode", "",
			"shard sizing: static (the -shards count is final; default) | auto (derive the count from the node spare-core budget, capped by -shards when set)")
		shardsSteal = flag.Int("shards-steal", config.DefaultShardSteal,
			"sibling queue backlog that lets an idle shard loop steal a write event (0 = stealing off)")
		shardsBudget = flag.Int("shards-budget", 0,
			"node spare-core budget shared by shard loops, persist writers and encode workers; setting it engages budget enforcement (0 = GOMAXPROCS-clients, engaged only in auto mode)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live telemetry over HTTP on this address (/metrics Prometheus text, /metrics.json, /trace, /jitter, /debug/pprof); empty disables")
		traceOut = flag.String("trace-out", "",
			"write the retained lifecycle spans as JSONL to this file at exit (read back with dsf-inspect -trace)")
		traceRing = flag.Int("trace-ring", 0,
			"lifecycle-trace ring capacity in spans, rounded up to a power of two (0 = default)")
	)
	flag.Parse()

	if err := run(*ranks, *coresPerNode, *steps, *outputEvery, *outDir,
		*backend, *compress, *bufMB, *allocator, *persistWork, *persistQueue,
		*encodeWork, *gzipLevel, *persistBackend, *storePartSize, *storePutWorkers,
		*storePutTimeout, *spillDir, *spillAfter, *aggregate, *aggregateRing,
		*controlMode, *controlInterval, *controlMaxWorkers, *controlMaxWindow, *controlMaxEncode,
		*shards, *shardsMode, *shardsSteal, *shardsBudget,
		*metricsAddr, *traceOut, *traceRing); err != nil {
		fmt.Fprintln(os.Stderr, "damaris-run:", err)
		os.Exit(1)
	}
}

func run(ranks, coresPerNode, steps, outputEvery int, outDir, backend string,
	compress bool, bufMB int64, allocator string, persistWork, persistQueue,
	encodeWork, gzipLevel int, persistBackend string, storePartSize int64,
	storePutWorkers, storePutTimeout int, spillDir string, spillAfter int,
	aggregate string, aggregateRing int,
	controlMode string, controlInterval, controlMaxWorkers, controlMaxWindow, controlMaxEncode int,
	shards int, shardsMode string, shardsSteal, shardsBudget int,
	metricsAddr, traceOut string, traceRing int) error {
	if ranks%coresPerNode != 0 {
		return fmt.Errorf("ranks %d not a multiple of cores-per-node %d", ranks, coresPerNode)
	}
	nodes := ranks / coresPerNode

	// One telemetry plane for the whole in-process world: every dedicated
	// core records spans and registers collectors against it, so a single
	// scrape (or the end-of-run report, which reads the same registry) covers
	// the run. The fleet federator merges rank-local registries — each
	// dedicated core registers its collectors on a private registry too as
	// it deploys — so /fleet/metrics shows the same figures rank by rank,
	// exactly as a multi-process fleet would expose them.
	plane := obs.NewPlane(traceRing)
	fleet := obs.NewFederator()
	plane.SetFederator(fleet)
	if metricsAddr != "" {
		ln, lerr := net.Listen("tcp", metricsAddr)
		if lerr != nil {
			return fmt.Errorf("metrics listener: %w", lerr)
		}
		srv := &http.Server{Handler: plane.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /metrics.json /fleet/metrics /epochs /trace /jitter /readyz /debug/pprof)\n", ln.Addr())
	}
	computeRanks := ranks
	if backend == "damaris" {
		computeRanks = ranks - nodes // one dedicated core per node
	}
	params := cm1.DefaultParams(computeRanks, 1)

	codec := dsf.None
	if compress {
		codec = dsf.ShuffleGzip
	}

	var mu sync.Mutex
	var phaseTimes []float64
	var serverWrite []float64
	var serverSpare []float64
	var bytesWritten int64
	var pipeStats []core.PipelineStats
	var shardBudgets [][2]int // engaged spare-core budget and shard reservation, per dedicated core

	var cfg *config.Config
	var sharedStore store.Backend
	if backend == "damaris" {
		var err error
		cfg, err = config.ParseString(cm1.ConfigXML(params, bufMB<<20, allocator, 1))
		if err != nil {
			return err
		}
		if persistWork < 0 || persistQueue < 1 || encodeWork < 0 {
			return fmt.Errorf("invalid pipeline knobs: workers=%d queue=%d encode=%d",
				persistWork, persistQueue, encodeWork)
		}
		if !transform.ValidGzipLevel(gzipLevel) {
			return fmt.Errorf("invalid gzip level %d (want -2..9)", gzipLevel)
		}
		cfg.PersistWorkers = persistWork
		cfg.PersistQueueDepth = persistQueue
		cfg.EncodeWorkers = encodeWork
		cfg.PersistGzipLevel = gzipLevel
		cfg.PersistBackend = persistBackend
		cfg.StorePartSize = storePartSize
		cfg.StorePutWorkers = storePutWorkers
		cfg.StorePutTimeoutMS = storePutTimeout
		cfg.SpillDir = spillDir
		cfg.SpillAfter = spillAfter
		cfg.AggregateMode = aggregate
		cfg.AggregateRingDepth = aggregateRing
		cfg.ControlMode = controlMode
		cfg.ControlIntervalMS = controlInterval
		cfg.ControlMaxWriters = controlMaxWorkers
		cfg.ControlMaxWindow = controlMaxWindow
		cfg.ControlMaxEncode = controlMaxEncode
		cfg.ShardCount = shards
		cfg.ShardMode = shardsMode
		cfg.ShardSteal = shardsSteal
		cfg.ShardBudget = shardsBudget
		if err := cfg.Validate(); err != nil {
			return err
		}
		if persistBackend != "" {
			// One backend instance shared by every dedicated core, so the
			// run's store metrics (and the object store's dedupe) span the
			// whole node set — mirroring a real shared storage service.
			sharedStore, err = store.OpenWith(persistBackend, store.Options{
				PartSize:   storePartSize,
				PutWorkers: storePutWorkers,
				PutTimeout: time.Duration(storePutTimeout) * time.Millisecond,
			})
			if err != nil {
				return err
			}
			defer sharedStore.Close()
		}
	}

	err := mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		var b cm1.Backend
		var computeComm *mpi.Comm

		switch backend {
		case "damaris":
			pers := &core.DSFPersister{Dir: outDir, Backend: sharedStore, Codec: codec,
				GzipLevel: gzipLevel, Node: comm.Node(), ServerID: comm.Rank()}
			pers.SetTracer(plane.Tracer())
			dep, err := core.Deploy(comm, cfg, nil, core.Options{OutputDir: outDir, Persister: pers, Obs: plane})
			if err != nil {
				panic(err)
			}
			if !dep.IsClient() {
				// This rank's persister is private to this server, so the
				// server rank owns the encode pool lifecycle (the server
				// only auto-wires pools and tracers for persisters it
				// creates itself).
				pool := dsf.NewEncodePool(encodeWork)
				pool.SetTracer(plane.Tracer(), comm.Rank())
				pers.SetEncodePool(pool)
				defer pool.Close()
				// This rank's slice of the fleet view: a private registry
				// carrying only this dedicated core's collectors, merged by
				// the federator behind /fleet/metrics.
				rankReg := obs.NewRegistry()
				dep.Server.RegisterObs(rankReg)
				fleet.AddRegistry(fmt.Sprint(comm.Rank()), rankReg)
				if err := dep.Server.Run(); err != nil {
					panic(err)
				}
				mu.Lock()
				serverWrite = append(serverWrite, dep.Server.WriteTimes()...)
				serverSpare = append(serverSpare, dep.Server.SpareSeconds())
				bytesWritten += dep.Server.BytesWritten()
				pipeStats = append(pipeStats, dep.Server.PipelineStats())
				budget, reserved := dep.Server.SpareBudget()
				shardBudgets = append(shardBudgets, [2]int{budget, reserved})
				mu.Unlock()
				return
			}
			computeComm = dep.ClientComm
			b = cm1.NewDamarisBackend(dep.Client)
		case "fpp":
			computeComm = comm
			b = cm1.NewFPPBackend(outDir, codec, comm.Rank())
		case "collective":
			computeComm = comm
			b = cm1.NewCollectiveBackend(outDir, comm)
		default:
			panic(fmt.Sprintf("unknown backend %q", backend))
		}

		sim, err := cm1.New(computeComm, params)
		if err != nil {
			panic(err)
		}
		rep, err := cm1.Run(sim, b, steps, outputEvery)
		if err != nil {
			panic(err)
		}
		if err := b.Close(); err != nil {
			panic(err)
		}
		mu.Lock()
		phaseTimes = append(phaseTimes, rep.WriteSeconds...)
		mu.Unlock()
	})
	if err != nil {
		return err
	}

	ps := stats.Summarize(phaseTimes)
	fmt.Printf("backend=%s ranks=%d nodes=%d steps=%d\n", backend, ranks, nodes, steps)
	fmt.Printf("client write phases: n=%d mean=%.2gs min=%.2gs max=%.2gs (spread %.2gs)\n",
		ps.N, ps.Mean, ps.Min, ps.Max, ps.Spread())
	if backend == "damaris" {
		ws := stats.Summarize(serverWrite)
		fmt.Printf("dedicated cores: %d flushes, write mean=%.2gs; spare total=%.2gs; %d bytes persisted\n",
			ws.N, ws.Mean, stats.Mean(serverSpare), bytesWritten)
		reportPipeline(pipeStats)
		reportShards(pipeStats, shardBudgets)
		reportSpill(pipeStats)
		reportControl(pipeStats, controlMode)
		reportStore(pipeStats, sharedStore)
		reportAggregate(pipeStats)
		reportJitter(plane)
	}
	if traceOut != "" {
		if err := writeTrace(plane, traceOut); err != nil {
			return err
		}
	}
	if sharedStore != nil {
		fmt.Printf("output in backend %s\n", persistBackend)
	} else {
		fmt.Printf("output in %s\n", outDir)
	}
	return nil
}

// reportJitter prints the per-stage lifecycle jitter over the retained
// spans. It goes through the same Plane.JitterReport the HTTP /jitter route
// serves, so a live scrape and this report always agree.
func reportJitter(plane *obs.Plane) {
	for _, j := range plane.JitterReport() {
		window := ""
		if j.Truncated {
			// The ring overwrote older spans: these percentiles describe
			// only the most recent n of the stage's total spans.
			window = fmt.Sprintf(" (ring kept last %d of %d spans)", j.Count, j.Total)
		}
		fmt.Printf("jitter[%s]: n=%d mean=%.2gs p50=%.2gs p95=%.2gs p99=%.2gs spread=%.2gs%s\n",
			j.Stage, j.Count, j.Mean, j.P50, j.P95, j.P99, j.Spread, window)
	}
}

// writeTrace dumps the retained lifecycle spans as JSONL for offline
// analysis with dsf-inspect -trace.
func writeTrace(plane *obs.Plane, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := plane.Tracer().WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	tr := plane.Tracer()
	fmt.Printf("trace: %d spans retained in %s (%d recorded, %d overwritten by the ring)\n",
		tr.Total()-tr.Dropped(), path, tr.Total(), tr.Dropped())
	return nil
}

// reportPipeline prints the write-behind pipeline's per-stage metrics,
// aggregated over all dedicated cores.
func reportPipeline(ps []core.PipelineStats) {
	if len(ps) == 0 {
		return
	}
	if ps[0].Workers == 0 {
		fmt.Printf("persistence: synchronous baseline (persist-workers=0)\n")
		reportEncode(ps)
		return
	}
	var enq, comp, fail int64
	var maxDepth int
	var depthMeans, latMeans, latMaxes, utils, batchMeans []float64
	for _, s := range ps {
		enq += s.Enqueued
		comp += s.Completed
		fail += s.Failures
		if s.MaxInFlight > maxDepth {
			maxDepth = s.MaxInFlight
		}
		depthMeans = append(depthMeans, s.Depth.Mean)
		latMeans = append(latMeans, s.FlushLatency.Mean)
		latMaxes = append(latMaxes, s.FlushLatency.Max)
		utils = append(utils, s.Utilization)
		batchMeans = append(batchMeans, s.BatchSize.Mean)
	}
	// Workers and Window are the *effective* sizes — wherever the control
	// plane left them, which under static control equals the configured
	// knobs — so a run is diagnosable from the report alone.
	fmt.Printf("pipeline: %d workers x window %d (queue %d) per core; %d iterations enqueued, %d durable, %d failed\n",
		ps[0].Workers, ps[0].Window, ps[0].QueueDepth, enq, comp, fail)
	fmt.Printf("pipeline: queue depth mean=%.2f max=%d; flush latency mean=%.2gs max=%.2gs\n",
		stats.Mean(depthMeans), maxDepth, stats.Mean(latMeans), stats.Max(latMaxes))
	fmt.Printf("pipeline: writer utilization mean=%.1f%%; batch size mean=%.2f\n",
		100*stats.Mean(utils), stats.Mean(batchMeans))
	reportEncode(ps)
}

// reportShards prints each dedicated core's event-loop shard activity and,
// when engaged, the node spare-core budget. Silent with a single classic
// loop everywhere and no budget — the pre-sharding report is unchanged then.
func reportShards(ps []core.PipelineStats, budgets [][2]int) {
	maxShards, maxBudget := 0, 0
	for _, s := range ps {
		if len(s.Shards) > maxShards {
			maxShards = len(s.Shards)
		}
	}
	for _, b := range budgets {
		if b[0] > maxBudget {
			maxBudget = b[0]
		}
	}
	if maxShards <= 1 && maxBudget == 0 {
		return
	}
	for i, s := range ps {
		n := len(s.Shards)
		var events, steals, stolen []int64
		var busy []string
		for _, sh := range s.Shards {
			events = append(events, sh.Events)
			steals = append(steals, sh.Steals)
			stolen = append(stolen, sh.Stolen)
			busy = append(busy, fmt.Sprintf("%.1f%%", 100*sh.BusyFraction))
		}
		fmt.Printf("shards[%d]: core %d: events=%v steals=%v stolen=%v busy=%v steal-threshold=%d\n",
			n, i, events, steals, stolen, busy, s.StealThreshold)
	}
	for i, b := range budgets {
		if b[0] == 0 {
			continue
		}
		fmt.Printf("shards[budget]: core %d: %d spare cores (%d reserved for shard loops; writers+encode share the rest)\n",
			i, b[0], b[1])
	}
}

// reportSpill prints the degraded-mode scratch-spill activity, summed over
// the dedicated cores. Silent when no spill directory is configured.
func reportSpill(ps []core.PipelineStats) {
	var spilled, recovered, replayed, bytes, failures int64
	var stranded int
	enabled := false
	for _, s := range ps {
		sp := s.Spill
		if !sp.Enabled {
			continue
		}
		enabled = true
		spilled += sp.Spilled
		recovered += sp.Recovered
		replayed += sp.Replayed
		bytes += sp.Bytes
		failures += sp.Failures
		stranded += sp.Stranded
	}
	if !enabled {
		return
	}
	fmt.Printf("spill: %d iterations spilled (%d bytes), %d recovered from a previous run, %d replayed through the store; %d replay failures\n",
		spilled, bytes, recovered, replayed, failures)
	if stranded > 0 {
		fmt.Printf("spill: %d iterations stranded on scratch disk (recovered on next start)\n", stranded)
	}
}

// reportControl prints the adaptive control plane's activity and the
// effective (post-tune) sizes per dedicated core. Static mode prints a
// single marker line so every report names its control mode.
func reportControl(ps []core.PipelineStats, mode string) {
	if mode != "auto" {
		fmt.Printf("control[static]: configured sizes are final\n")
		return
	}
	var decisions, resizes int64
	for _, s := range ps {
		decisions += s.Control.Decisions
		resizes += s.Control.Resizes
	}
	var degraded int64
	for _, s := range ps {
		degraded += s.Control.DegradedDecisions
	}
	fmt.Printf("control[auto]: %d decisions, %d resizes across %d dedicated cores\n",
		decisions, resizes, len(ps))
	if degraded > 0 {
		fmt.Printf("control[auto]: %d decisions taken in degraded mode (spill backlog pending; window growth vetoed)\n",
			degraded)
	}
	for i, s := range ps {
		c := s.Control
		fmt.Printf("control[auto]: core %d effective writers=%d window=%d encode=%d "+
			"(bounds %d/%d/%d, ratio %.2f, steady %d)\n",
			i, c.Sizes.Writers, c.Sizes.Window, c.Sizes.Encode,
			c.Limits.MaxWriters, c.Limits.MaxWindow, c.Limits.MaxEncode, c.Ratio, c.Steady)
	}
}

// reportStore prints the storage-backend metrics. With a shared backend one
// snapshot covers the whole run; otherwise the per-core backends (each
// server's PipelineStats.Store) are aggregated. Silent when nothing was
// stored.
func reportStore(ps []core.PipelineStats, shared store.Backend) {
	var agg []store.Stats
	if shared != nil {
		agg = []store.Stats{shared.Stats()}
	} else {
		for _, s := range ps {
			if s.Store.Scheme != "" {
				agg = append(agg, s.Store)
			}
		}
	}
	var puts, putBytes, dedupe, dedupeBytes, retries, failures, commits, maxFlight int64
	var backoffs, putTimeouts, hedges, hedgeWins int64
	var backoffSec float64
	var putLatMeans []float64
	scheme := ""
	for _, s := range agg {
		scheme = s.Scheme
		puts += s.Puts
		putBytes += s.PutBytes
		dedupe += s.DedupeHits
		dedupeBytes += s.DedupeBytes
		retries += s.Retries
		failures += s.Failures
		commits += s.Commits
		backoffs += s.Backoffs
		backoffSec += s.BackoffSeconds
		putTimeouts += s.PutTimeouts
		hedges += s.Hedges
		hedgeWins += s.HedgeWins
		if s.MaxPartsInFlight > maxFlight {
			maxFlight = s.MaxPartsInFlight
		}
		if s.PutLatency.N > 0 {
			putLatMeans = append(putLatMeans, s.PutLatency.Mean)
		}
	}
	if puts == 0 && commits == 0 {
		return
	}
	fmt.Printf("store[%s]: %d puts (%d bytes), %d commits; put latency mean=%.2gs\n",
		scheme, puts, putBytes, commits, stats.Mean(putLatMeans))
	if dedupe > 0 || maxFlight > 0 || retries > 0 || failures > 0 {
		rate := 0.0
		if puts+dedupe > 0 {
			rate = float64(dedupe) / float64(puts+dedupe)
		}
		fmt.Printf("store[%s]: dedupe %d hits (%d bytes, %.0f%% of part uploads); %d retries, %d failures; max %d parts in flight\n",
			scheme, dedupe, dedupeBytes, 100*rate, retries, failures, maxFlight)
	}
	if backoffs > 0 || putTimeouts > 0 || hedges > 0 {
		fmt.Printf("store[%s]: %d backoff waits (%.2gs total), %d put timeouts; %d hedged puts, %d hedge wins\n",
			scheme, backoffs, backoffSec, putTimeouts, hedges, hedgeWins)
	}
}

// reportAggregate prints the aggregation tier's metrics, summed over the
// node leaders (siblings report zero, so every node counts once). Silent
// when aggregation is off.
func reportAggregate(ps []core.PipelineStats) {
	var epochs, empty, contribs, chunks, bytes, reelect, forwarded int64
	var ringMax int
	mode := ""
	leaders := 0
	for _, s := range ps {
		if s.Aggregate.Members == 0 {
			continue
		}
		leaders++
		mode = s.Aggregate.Mode
		epochs += s.Aggregate.Epochs
		empty += s.Aggregate.EmptyEpochs
		contribs += s.Aggregate.Contributions
		chunks += s.Aggregate.MergedChunks
		bytes += s.Aggregate.MergedBytes
		reelect += s.Aggregate.Reelections
		if s.Aggregate.RingMax > ringMax {
			ringMax = s.Aggregate.RingMax
		}
		forwarded += s.AggregateForwarded
	}
	if leaders == 0 {
		return
	}
	fmt.Printf("aggregate[%s]: %d node leaders; %d merged epochs (%d chunks, %d bytes) from %d contributions; ring max %d; %d re-elections\n",
		mode, leaders, epochs, chunks, bytes, contribs, ringMax, reelect)
	if empty > 0 {
		fmt.Printf("aggregate[%s]: %d empty epochs acked without an object\n", mode, empty)
	}
	for _, s := range ps {
		if s.AggregateGlobal.Members == 0 {
			continue
		}
		g := s.AggregateGlobal
		fmt.Printf("aggregate[node]: global tier merged %d epochs (%d chunks, %d bytes) from %d nodes; %d epochs forwarded over the interconnect\n",
			g.Epochs, g.MergedChunks, g.MergedBytes, g.Members, forwarded)
	}
}

// reportEncode prints the encode-stage metrics, aggregated over all
// dedicated cores; silent when no encode pool ran.
func reportEncode(ps []core.PipelineStats) {
	var chunks, raw, stored, maxFlight int64
	var latMeans, utils []float64
	for _, s := range ps {
		if s.Encode.Workers == 0 {
			continue
		}
		chunks += s.Encode.Chunks
		raw += s.Encode.RawBytes
		stored += s.Encode.StoredBytes
		if s.Encode.MaxBytesInFlight > maxFlight {
			maxFlight = s.Encode.MaxBytesInFlight
		}
		latMeans = append(latMeans, s.Encode.Latency.Mean)
		utils = append(utils, s.Encode.Utilization)
	}
	if chunks == 0 {
		return
	}
	fmt.Printf("encode: %d workers per core; %d chunks, %d -> %d bytes; latency mean=%.2gs; "+
		"pool utilization mean=%.1f%%; max %d raw bytes in flight\n",
		ps[0].Encode.Workers, chunks, raw, stored,
		stats.Mean(latMeans), 100*stats.Mean(utils), maxFlight)
}
