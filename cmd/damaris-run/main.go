// Command damaris-run executes the real middleware pipeline: the CM1-like
// mini-app on an in-process MPI world with one dedicated I/O core per node,
// writing DSF files through Damaris — or through the file-per-process /
// collective baselines for comparison.
//
// Usage:
//
//	damaris-run -ranks 12 -cores-per-node 4 -steps 20 -output-every 5 -out /tmp/out
//	damaris-run -backend fpp ...
//	damaris-run -backend collective ...
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/mpi"
	"damaris/internal/stats"
	"damaris/internal/transform"
)

func main() {
	var (
		ranks        = flag.Int("ranks", 12, "total ranks (cores) in the world")
		coresPerNode = flag.Int("cores-per-node", 4, "SMP node width")
		steps        = flag.Int("steps", 20, "simulation timesteps")
		outputEvery  = flag.Int("output-every", 5, "write phase every K steps")
		outDir       = flag.String("out", "damaris-out", "output directory")
		backend      = flag.String("backend", "damaris", "damaris | fpp | collective")
		compress     = flag.Bool("compress", false, "gzip chunks (damaris and fpp)")
		bufMB        = flag.Int64("buffer-mb", 64, "per-node shared buffer (MiB)")
		allocator    = flag.String("allocator", "mutex", "shared-memory allocator: mutex | lockfree")
		persistWork  = flag.Int("persist-workers", config.DefaultPersistWorkers,
			"write-behind persist workers per dedicated core (0 = synchronous baseline)")
		persistQueue = flag.Int("persist-queue", config.DefaultPersistQueueDepth,
			"in-flight iteration queue depth (also the client flow window when async)")
		encodeWork = flag.Int("encode-workers", config.DefaultEncodeWorkers,
			"parallel chunk-encode workers per dedicated core (0 = serial encoding)")
		gzipLevel = flag.Int("gzip-level", config.DefaultPersistGzipLevel,
			"gzip level for compressed chunks, full compress/gzip range -2 (HuffmanOnly) to 9")
	)
	flag.Parse()

	if err := run(*ranks, *coresPerNode, *steps, *outputEvery, *outDir,
		*backend, *compress, *bufMB, *allocator, *persistWork, *persistQueue,
		*encodeWork, *gzipLevel); err != nil {
		fmt.Fprintln(os.Stderr, "damaris-run:", err)
		os.Exit(1)
	}
}

func run(ranks, coresPerNode, steps, outputEvery int, outDir, backend string,
	compress bool, bufMB int64, allocator string, persistWork, persistQueue,
	encodeWork, gzipLevel int) error {
	if ranks%coresPerNode != 0 {
		return fmt.Errorf("ranks %d not a multiple of cores-per-node %d", ranks, coresPerNode)
	}
	nodes := ranks / coresPerNode
	computeRanks := ranks
	if backend == "damaris" {
		computeRanks = ranks - nodes // one dedicated core per node
	}
	params := cm1.DefaultParams(computeRanks, 1)

	codec := dsf.None
	if compress {
		codec = dsf.ShuffleGzip
	}

	var mu sync.Mutex
	var phaseTimes []float64
	var serverWrite []float64
	var serverSpare []float64
	var bytesWritten int64
	var pipeStats []core.PipelineStats

	var cfg *config.Config
	if backend == "damaris" {
		var err error
		cfg, err = config.ParseString(cm1.ConfigXML(params, bufMB<<20, allocator, 1))
		if err != nil {
			return err
		}
		if persistWork < 0 || persistQueue < 1 || encodeWork < 0 {
			return fmt.Errorf("invalid pipeline knobs: workers=%d queue=%d encode=%d",
				persistWork, persistQueue, encodeWork)
		}
		if !transform.ValidGzipLevel(gzipLevel) {
			return fmt.Errorf("invalid gzip level %d (want -2..9)", gzipLevel)
		}
		cfg.PersistWorkers = persistWork
		cfg.PersistQueueDepth = persistQueue
		cfg.EncodeWorkers = encodeWork
		cfg.PersistGzipLevel = gzipLevel
	}

	err := mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		var b cm1.Backend
		var computeComm *mpi.Comm

		switch backend {
		case "damaris":
			pers := &core.DSFPersister{Dir: outDir, Codec: codec, GzipLevel: gzipLevel,
				Node: comm.Node(), ServerID: comm.Rank()}
			dep, err := core.Deploy(comm, cfg, nil, core.Options{OutputDir: outDir, Persister: pers})
			if err != nil {
				panic(err)
			}
			if !dep.IsClient() {
				// This rank's persister is private to this server, so the
				// server rank owns the encode pool lifecycle (the server
				// only auto-wires pools for persisters it creates itself).
				pool := dsf.NewEncodePool(encodeWork)
				pers.SetEncodePool(pool)
				defer pool.Close()
				if err := dep.Server.Run(); err != nil {
					panic(err)
				}
				mu.Lock()
				serverWrite = append(serverWrite, dep.Server.WriteTimes()...)
				serverSpare = append(serverSpare, dep.Server.SpareSeconds())
				bytesWritten += dep.Server.BytesWritten()
				pipeStats = append(pipeStats, dep.Server.PipelineStats())
				mu.Unlock()
				return
			}
			computeComm = dep.ClientComm
			b = cm1.NewDamarisBackend(dep.Client)
		case "fpp":
			computeComm = comm
			b = cm1.NewFPPBackend(outDir, codec, comm.Rank())
		case "collective":
			computeComm = comm
			b = cm1.NewCollectiveBackend(outDir, comm)
		default:
			panic(fmt.Sprintf("unknown backend %q", backend))
		}

		sim, err := cm1.New(computeComm, params)
		if err != nil {
			panic(err)
		}
		rep, err := cm1.Run(sim, b, steps, outputEvery)
		if err != nil {
			panic(err)
		}
		if err := b.Close(); err != nil {
			panic(err)
		}
		mu.Lock()
		phaseTimes = append(phaseTimes, rep.WriteSeconds...)
		mu.Unlock()
	})
	if err != nil {
		return err
	}

	ps := stats.Summarize(phaseTimes)
	fmt.Printf("backend=%s ranks=%d nodes=%d steps=%d\n", backend, ranks, nodes, steps)
	fmt.Printf("client write phases: n=%d mean=%.2gs min=%.2gs max=%.2gs (spread %.2gs)\n",
		ps.N, ps.Mean, ps.Min, ps.Max, ps.Spread())
	if backend == "damaris" {
		ws := stats.Summarize(serverWrite)
		fmt.Printf("dedicated cores: %d flushes, write mean=%.2gs; spare total=%.2gs; %d bytes persisted\n",
			ws.N, ws.Mean, stats.Mean(serverSpare), bytesWritten)
		reportPipeline(pipeStats)
	}
	fmt.Printf("output in %s\n", outDir)
	return nil
}

// reportPipeline prints the write-behind pipeline's per-stage metrics,
// aggregated over all dedicated cores.
func reportPipeline(ps []core.PipelineStats) {
	if len(ps) == 0 {
		return
	}
	if ps[0].Workers == 0 {
		fmt.Printf("persistence: synchronous baseline (persist-workers=0)\n")
		reportEncode(ps)
		return
	}
	var enq, comp, fail int64
	var maxDepth int
	var depthMeans, latMeans, latMaxes, utils, batchMeans []float64
	for _, s := range ps {
		enq += s.Enqueued
		comp += s.Completed
		fail += s.Failures
		if s.MaxInFlight > maxDepth {
			maxDepth = s.MaxInFlight
		}
		depthMeans = append(depthMeans, s.Depth.Mean)
		latMeans = append(latMeans, s.FlushLatency.Mean)
		latMaxes = append(latMaxes, s.FlushLatency.Max)
		utils = append(utils, s.Utilization)
		batchMeans = append(batchMeans, s.BatchSize.Mean)
	}
	fmt.Printf("pipeline: %d workers x queue %d per core; %d iterations enqueued, %d durable, %d failed\n",
		ps[0].Workers, ps[0].QueueDepth, enq, comp, fail)
	fmt.Printf("pipeline: queue depth mean=%.2f max=%d; flush latency mean=%.2gs max=%.2gs\n",
		stats.Mean(depthMeans), maxDepth, stats.Mean(latMeans), stats.Max(latMaxes))
	fmt.Printf("pipeline: writer utilization mean=%.1f%%; batch size mean=%.2f\n",
		100*stats.Mean(utils), stats.Mean(batchMeans))
	reportEncode(ps)
}

// reportEncode prints the encode-stage metrics, aggregated over all
// dedicated cores; silent when no encode pool ran.
func reportEncode(ps []core.PipelineStats) {
	var chunks, raw, stored, maxFlight int64
	var latMeans, utils []float64
	for _, s := range ps {
		if s.Encode.Workers == 0 {
			continue
		}
		chunks += s.Encode.Chunks
		raw += s.Encode.RawBytes
		stored += s.Encode.StoredBytes
		if s.Encode.MaxBytesInFlight > maxFlight {
			maxFlight = s.Encode.MaxBytesInFlight
		}
		latMeans = append(latMeans, s.Encode.Latency.Mean)
		utils = append(utils, s.Encode.Utilization)
	}
	if chunks == 0 {
		return
	}
	fmt.Printf("encode: %d workers per core; %d chunks, %d -> %d bytes; latency mean=%.2gs; "+
		"pool utilization mean=%.1f%%; max %d raw bytes in flight\n",
		ps[0].Encode.Workers, chunks, raw, stored,
		stats.Mean(latMeans), 100*stats.Mean(utils), maxFlight)
}
