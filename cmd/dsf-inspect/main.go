// Command dsf-inspect lists, verifies and dumps DSF files written by the
// Damaris persistency layer or the baseline writers — from plain files or
// from any registered storage backend (read back through its manifest).
//
// Usage:
//
//	dsf-inspect file.dsf                      # list chunks and attributes
//	dsf-inspect -verify file.dsf              # checksum-verify every chunk
//	dsf-inspect -stats file.dsf               # per-chunk min/max/mean for float data
//	dsf-inspect -store obj:///data/objects    # list + inspect every committed object
//	dsf-inspect -store obj://dir -verify name # verify one object of a backend
//	dsf-inspect -store obj://dir -gc          # mark-and-sweep unreferenced parts
//	dsf-inspect -store obj://dir -gc -gc-dry-run  # report only
//	dsf-inspect -trace run.jsonl              # per-stage jitter summary of a lifecycle trace
//	dsf-inspect -trace -trace-format chrome run.jsonl > run.trace  # chrome://tracing
//	dsf-inspect -trace -trace-format epochs rank*.jsonl  # merge per-rank traces into per-epoch critical paths
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"damaris/internal/dsf"
	"damaris/internal/layout"
	"damaris/internal/mpi"
	"damaris/internal/store"
)

func main() {
	var (
		verify = flag.Bool("verify", false, "verify every chunk's checksum and decodability")
		stat   = flag.Bool("stats", false, "print min/max/mean of floating-point chunks")
		st     = flag.String("store", "", "storage backend URL; arguments become object names (none = all committed objects)")
		gc     = flag.Bool("gc", false, "mark-and-sweep the backend: reclaim content-addressed parts no committed manifest references (requires -store)")
		gcDry  = flag.Bool("gc-dry-run", false, "with -gc, report what would be reclaimed without deleting")
		gcAge  = flag.Duration("gc-min-age", store.DefaultGCMinAge,
			"with -gc, minimum age of unreferenced data before it may be reclaimed; in-flight uploads younger than this are retry seeds, not garbage (0 reclaims immediately — only safe when no writer can be live)")
		trace    = flag.Bool("trace", false, "arguments are lifecycle-trace JSONL files (damaris-run -trace-out or GET /trace)")
		traceFmt = flag.String("trace-format", "summary", "with -trace: summary | chrome | jsonl | epochs (chrome and jsonl write to stdout; epochs merges all files into one per-epoch critical-path view)")
	)
	flag.Parse()
	if *st == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dsf-inspect [-verify] [-stats] file.dsf... | -store URL [-gc [-gc-dry-run]] [object...] | -trace [-trace-format f] run.jsonl...")
		os.Exit(2)
	}
	if *trace {
		exit := 0
		if *traceFmt == "epochs" {
			// The epochs view is cross-file by design: each per-rank trace
			// holds one rank's slice of every epoch, and only their merge
			// shows the fleet-wide critical path.
			if err := inspectTraceEpochs(flag.Args()); err != nil {
				fmt.Fprintf(os.Stderr, "dsf-inspect: %v\n", err)
				exit = 1
			}
			os.Exit(exit)
		}
		for _, path := range flag.Args() {
			if err := inspectTrace(path, *traceFmt); err != nil {
				fmt.Fprintf(os.Stderr, "dsf-inspect: %s: %v\n", path, err)
				exit = 1
			}
		}
		os.Exit(exit)
	}
	if *gc && *st == "" {
		fmt.Fprintln(os.Stderr, "dsf-inspect: -gc requires -store")
		os.Exit(2)
	}
	exit := 0
	if *st != "" {
		if *gc {
			if err := runGC(*st, *gcDry, *gcAge); err != nil {
				fmt.Fprintf(os.Stderr, "dsf-inspect: %s: %v\n", *st, err)
				exit = 1
			}
			os.Exit(exit)
		}
		if err := inspectStore(*st, flag.Args(), *verify, *stat); err != nil {
			fmt.Fprintf(os.Stderr, "dsf-inspect: %s: %v\n", *st, err)
			exit = 1
		}
		os.Exit(exit)
	}
	for _, path := range flag.Args() {
		if err := inspect(path, *verify, *stat); err != nil {
			fmt.Fprintf(os.Stderr, "dsf-inspect: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runGC opens a backend and runs one mark-and-sweep pass over it.
func runGC(url string, dryRun bool, minAge time.Duration) error {
	window := fmt.Sprintf("within the %s grace window", minAge)
	if minAge <= 0 {
		// An operator's explicit 0 means "now"; the library's zero value
		// means "default grace window". Translate at the CLI boundary.
		minAge = -1
		window = "(no grace window applied)"
	}
	b, err := store.Open(url)
	if err != nil {
		return err
	}
	defer b.Close()
	col, ok := b.(store.Collector)
	if !ok {
		return fmt.Errorf("backend does not support garbage collection (only content-addressed stores accumulate unreferenced parts)")
	}
	rep, err := col.GC(store.GCOptions{DryRun: dryRun, MinAge: minAge})
	if err != nil {
		return err
	}
	verb := "reclaimed"
	if dryRun {
		verb = "would reclaim"
	}
	fmt.Printf("%s: marked %d manifests referencing %d parts\n", url, rep.Manifests, rep.LiveParts)
	fmt.Printf("%s: %s %d unreferenced parts (%d bytes) and %d stale temps; kept %d %s\n",
		url, verb, rep.ReclaimedBlobs, rep.ReclaimedBytes, rep.ReclaimedTemps, rep.KeptYoung, window)
	return nil
}

// inspectStore opens a storage backend and inspects the named objects (all
// committed objects when names is empty), resolving their bytes through the
// backend's manifests.
func inspectStore(url string, names []string, verify, stat bool) error {
	b, err := store.Open(url)
	if err != nil {
		return err
	}
	defer b.Close()
	if len(names) == 0 {
		objs, err := b.Objects()
		if err != nil {
			return err
		}
		for _, o := range objs {
			names = append(names, o.Name)
		}
		if len(names) == 0 {
			fmt.Printf("%s: no committed objects\n", url)
			return nil
		}
	}
	failed := 0
	for _, name := range names {
		if err := inspectObject(b, name, verify, stat); err != nil {
			fmt.Fprintf(os.Stderr, "dsf-inspect: %s: %v\n", name, err)
			failed++
		}
	}
	if failed > 0 {
		// Per-object errors already printed above; summarize rather than
		// have main repeat the first one verbatim.
		return fmt.Errorf("%d of %d objects failed", failed, len(names))
	}
	return nil
}

// inspectObject reads one committed object out of a backend as a DSF stream.
func inspectObject(b store.Backend, name string, verify, stat bool) error {
	m, err := b.Manifest(name)
	if err != nil {
		return err
	}
	or, err := b.Open(name)
	if err != nil {
		return err
	}
	defer or.Close()
	r, err := dsf.OpenReaderAt(or, or.Size())
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("%s: %d bytes in %d parts\n", name, m.Size, len(m.Parts))
	return inspectReader(r, verify, stat)
}

func inspect(path string, verify, stat bool) error {
	r, err := dsf.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("%s:\n", path)
	return inspectReader(r, verify, stat)
}

// inspectReader prints one opened DSF stream, wherever its bytes live.
func inspectReader(r *dsf.Reader, verify, stat bool) error {
	attrs := r.Attributes()
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  attr %s = %q\n", k, attrs[k])
	}
	// Aggregated objects carry their fan-in provenance: the dedicated cores
	// (and, for the cross-node tier, the nodes) whose data was merged in.
	if v, ok := attrs["servers"]; ok {
		fmt.Printf("  contributing servers: %s\n", v)
	}
	if v, ok := attrs["nodes"]; ok {
		fmt.Printf("  contributing nodes: %s\n", v)
	}
	var raw, stored int64
	for i, m := range r.Chunks() {
		fmt.Printf("  chunk %d: %s it=%d src=%d %v codec=%v %d->%d bytes",
			i, m.Name, m.Iteration, m.Source, m.Layout, m.Codec, m.RawSize, m.Stored)
		raw += m.RawSize
		stored += m.Stored
		if stat && (m.Layout.Type() == layout.Float32 || m.Layout.Type() == layout.Float64) {
			data, err := r.ReadChunk(i)
			if err != nil {
				return err
			}
			mn, mx, mean := chunkStats(data, m.Layout.Type())
			fmt.Printf(" min=%.4g max=%.4g mean=%.4g", mn, mx, mean)
		}
		fmt.Println()
	}
	if stored > 0 && raw != stored {
		fmt.Printf("  total %d -> %d bytes (ratio %.0f%%)\n", raw, stored, 100*float64(raw)/float64(stored))
	}
	if verify {
		if err := r.Verify(); err != nil {
			return err
		}
		fmt.Println("  verify: ok")
	}
	return nil
}

func chunkStats(data []byte, t layout.Type) (mn, mx, mean float64) {
	var xs []float64
	if t == layout.Float32 {
		for _, x := range mpi.BytesToFloat32s(data) {
			xs = append(xs, float64(x))
		}
	} else {
		xs = mpi.BytesToFloat64s(data)
	}
	if len(xs) == 0 {
		return 0, 0, 0
	}
	mn, mx = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		sum += x
	}
	return mn, mx, sum / float64(len(xs))
}
