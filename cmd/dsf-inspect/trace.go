package main

import (
	"fmt"
	"os"
	"time"

	"damaris/internal/obs"
	"damaris/internal/stats"
)

// inspectTrace reads a lifecycle-trace JSONL file (damaris-run -trace-out or
// a saved GET /trace body) and re-renders it: a per-stage jitter summary
// (default), the Chrome trace-event conversion for chrome://tracing, or the
// normalized JSONL itself.
func inspectTrace(path, format string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpansJSONL(f)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		return obs.WriteSpansChrome(os.Stdout, spans)
	case "jsonl":
		return obs.WriteSpansJSONL(os.Stdout, spans)
	case "summary":
		printTraceSummary(path, spans)
		return nil
	default:
		return fmt.Errorf("unknown -trace-format %q (want summary | chrome | jsonl)", format)
	}
}

// printTraceSummary prints per-stage descriptive statistics over the file's
// spans — the same Summarize the live /jitter route applies to the ring, so
// an archived trace reproduces the run's jitter lines.
func printTraceSummary(path string, spans []obs.Span) {
	fmt.Printf("%s: %d spans\n", path, len(spans))
	servers := map[int]bool{}
	var errs int
	for _, sp := range spans {
		servers[sp.Server] = true
		if sp.Err {
			errs++
		}
	}
	fmt.Printf("  %d recording servers; %d error spans\n", len(servers), errs)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		var durs []float64
		var bytes int64
		for _, sp := range spans {
			if sp.Stage != st {
				continue
			}
			durs = append(durs, time.Duration(sp.Dur).Seconds())
			bytes += sp.Bytes
		}
		if len(durs) == 0 {
			continue
		}
		s := stats.Summarize(durs)
		fmt.Printf("  %-7s n=%-6d mean=%-9.3gs p50=%-9.3gs p95=%-9.3gs p99=%-9.3gs spread=%-9.3gs bytes=%d\n",
			st, s.N, s.Mean, s.Median, s.P95, s.P99, s.Spread(), bytes)
	}
}
