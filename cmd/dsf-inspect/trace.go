package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"damaris/internal/obs"
	"damaris/internal/stats"
)

// inspectTrace reads a lifecycle-trace JSONL file (damaris-run -trace-out or
// a saved GET /trace body) and re-renders it: a per-stage jitter summary
// (default), the Chrome trace-event conversion for chrome://tracing, or the
// normalized JSONL itself.
func inspectTrace(path, format string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpansJSONL(f)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		return obs.WriteSpansChrome(os.Stdout, spans)
	case "jsonl":
		return obs.WriteSpansJSONL(os.Stdout, spans)
	case "summary":
		printTraceSummary(path, spans)
		return nil
	default:
		return fmt.Errorf("unknown -trace-format %q (want summary | chrome | jsonl | epochs)", format)
	}
}

// inspectTraceEpochs merges the spans of every given per-rank trace file
// and prints the per-epoch critical-path reconstruction — the offline twin
// of the live /epochs route, for fleets whose ranks each dumped their own
// -trace-out file.
func inspectTraceEpochs(paths []string) error {
	var spans []obs.Span
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		ss, err := obs.ReadSpansJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, ss...)
	}
	// Same deterministic order Tracer.Snapshot produces, so the offline
	// analysis of N files equals the live analysis of one merged ring.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	reports := obs.AnalyzeEpochs(spans)
	fmt.Printf("%d spans across %d files, %d epochs\n", len(spans), len(paths), len(reports))
	for _, r := range reports {
		fmt.Printf("epoch %-6d spans=%-5d wall=%-9.3gs dominant=%-8s (%.3gs total) slowest-origin=%d (%.3gs)",
			r.Epoch, r.Spans, r.WallSeconds, r.DominantStage, r.DominantSeconds,
			r.SlowestOrigin, r.SlowestSeconds)
		if r.Err {
			fmt.Print(" ERR")
		}
		if len(r.Stragglers) > 0 {
			fmt.Printf(" stragglers=%v", r.Stragglers)
		}
		fmt.Println()
		for _, st := range r.Stages {
			fmt.Printf("  %-8s n=%-5d total=%-9.3gs max=%-9.3gs slowest-origin=%d\n",
				st.Stage, st.Count, st.TotalSeconds, st.MaxSeconds, st.SlowestOrigin)
		}
	}
	return nil
}

// printTraceSummary prints per-stage descriptive statistics over the file's
// spans — the same Summarize the live /jitter route applies to the ring, so
// an archived trace reproduces the run's jitter lines.
func printTraceSummary(path string, spans []obs.Span) {
	fmt.Printf("%s: %d spans\n", path, len(spans))
	servers := map[int]bool{}
	var errs int
	for _, sp := range spans {
		servers[sp.Server] = true
		if sp.Err {
			errs++
		}
	}
	fmt.Printf("  %d recording servers; %d error spans\n", len(servers), errs)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		var durs []float64
		var bytes int64
		for _, sp := range spans {
			if sp.Stage != st {
				continue
			}
			durs = append(durs, time.Duration(sp.Dur).Seconds())
			bytes += sp.Bytes
		}
		if len(durs) == 0 {
			continue
		}
		s := stats.Summarize(durs)
		fmt.Printf("  %-7s n=%-6d mean=%-9.3gs p50=%-9.3gs p95=%-9.3gs p99=%-9.3gs spread=%-9.3gs bytes=%d\n",
			st, s.N, s.Mean, s.Median, s.P95, s.P99, s.Spread(), bytes)
	}
}
