package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"damaris/internal/dsf"
	"damaris/internal/layout"
	"damaris/internal/mpi"
	"damaris/internal/store"
)

// goldenField is a deterministic float32 payload whose values survive a
// codec round trip bit-exactly.
func goldenField(seed int, n int) []float32 {
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(seed)*1000 + float32(i)*0.5
	}
	return xs
}

// writeGolden writes one DSF file with two chunks per codec-irrelevant
// iteration and returns its path and the payloads by chunk order.
func writeGolden(t *testing.T, dir string, codec dsf.Codec) (string, [][]float32) {
	t.Helper()
	path := filepath.Join(dir, "golden_"+codec.String()+".dsf")
	path = strings.ReplaceAll(path, "+", "_") // shuffle+gzip → filesystem-safe
	w, err := dsf.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("writer", "golden-test")
	lay := layout.MustNew(layout.Float32, 16, 8)
	var fields [][]float32
	for it := int64(0); it < 2; it++ {
		for src := 0; src < 2; src++ {
			field := goldenField(int(it)*10+src, 16*8)
			fields = append(fields, field)
			meta := dsf.ChunkMeta{
				Name:      "theta",
				Iteration: it,
				Source:    src,
				Layout:    lay,
				Codec:     codec,
			}
			if err := w.WriteChunk(meta, mpi.Float32sToBytes(field)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, fields
}

// TestGoldenRoundTripAllCodecs writes golden files with every codec and
// round-trips them through the same reader path dsf-inspect uses,
// verifying chunk-level metadata, checksums and bit-exact payloads.
func TestGoldenRoundTripAllCodecs(t *testing.T) {
	dir := t.TempDir()
	for _, codec := range []dsf.Codec{dsf.None, dsf.Gzip, dsf.ShuffleGzip} {
		t.Run(codec.String(), func(t *testing.T) {
			path, fields := writeGolden(t, dir, codec)

			// The inspect entry point itself (verify + stats) must succeed.
			if err := inspect(path, true, true); err != nil {
				t.Fatalf("inspect: %v", err)
			}

			r, err := dsf.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := len(r.Chunks()); got != 4 {
				t.Fatalf("chunks = %d, want 4", got)
			}
			if r.Attributes()["writer"] != "golden-test" {
				t.Errorf("attributes = %v", r.Attributes())
			}
			for i, m := range r.Chunks() {
				if m.Codec != codec {
					t.Errorf("chunk %d codec = %v, want %v", i, m.Codec, codec)
				}
				b, err := r.ReadChunk(i)
				if err != nil {
					t.Fatalf("chunk %d: %v", i, err)
				}
				if !bytes.Equal(b, mpi.Float32sToBytes(fields[i])) {
					t.Errorf("chunk %d payload mismatch after %v round trip", i, codec)
				}
			}
			// Compressed codecs must actually compress this smooth field.
			if codec != dsf.None {
				for i, m := range r.Chunks() {
					if m.Stored >= m.RawSize {
						t.Errorf("chunk %d not compressed: %d -> %d", i, m.RawSize, m.Stored)
					}
				}
			}
			// Find by tuple, as downstream tools do.
			if i := r.Find("theta", 1, 1); i < 0 {
				t.Error("Find lost a tuple")
			}
		})
	}
}

// corrupt copies src to dst applying f to the file bytes.
func corrupt(t *testing.T, src, dst string, f func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedAndTruncatedFiles drives every corruption error path of the
// reader dsf-inspect relies on: truncated footer, bad magics, payload
// bit-flips caught by CRC, and inconsistent footer geometry.
func TestCorruptedAndTruncatedFiles(t *testing.T) {
	dir := t.TempDir()
	good, _ := writeGolden(t, dir, dsf.ShuffleGzip)

	t.Run("truncated-mid-file", func(t *testing.T) {
		p := filepath.Join(dir, "truncated.dsf")
		corrupt(t, good, p, func(b []byte) []byte { return b[:len(b)/2] })
		if err := inspect(p, true, false); err == nil {
			t.Error("truncated file should fail to open")
		}
	})

	t.Run("truncated-to-header", func(t *testing.T) {
		p := filepath.Join(dir, "header-only.dsf")
		corrupt(t, good, p, func(b []byte) []byte { return b[:8] })
		err := inspect(p, false, false)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("header-only file error = %v, want truncation", err)
		}
	})

	t.Run("bad-head-magic", func(t *testing.T) {
		p := filepath.Join(dir, "badmagic.dsf")
		corrupt(t, good, p, func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		})
		if err := inspect(p, false, false); err == nil {
			t.Error("bad header magic should fail")
		}
	})

	t.Run("payload-bitflip-caught-by-crc", func(t *testing.T) {
		p := filepath.Join(dir, "bitflip.dsf")
		corrupt(t, good, p, func(b []byte) []byte {
			b[16] ^= 0x01 // inside the first chunk's stored bytes
			return b
		})
		// The TOC is intact, so listing succeeds without -verify...
		if err := inspect(p, false, false); err != nil {
			t.Errorf("listing a bit-flipped file should still work, got %v", err)
		}
		// ...but -verify must catch the flip through the CRC.
		err := inspect(p, true, false)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("verify error = %v, want checksum mismatch", err)
		}
	})

	t.Run("footer-geometry-lie", func(t *testing.T) {
		p := filepath.Join(dir, "badfooter.dsf")
		corrupt(t, good, p, func(b []byte) []byte {
			// Footer layout: [toc offset][toc length][magic]; shrink the
			// recorded toc length so offset+len+24 != file size.
			b[len(b)-16] ^= 0x04
			return b
		})
		if err := inspect(p, false, false); err == nil {
			t.Error("inconsistent footer should fail")
		}
	})

	t.Run("not-a-dsf-file", func(t *testing.T) {
		p := filepath.Join(dir, "noise.dsf")
		if err := os.WriteFile(p, []byte("this is not a dsf file at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := inspect(p, false, false); err == nil {
			t.Error("arbitrary bytes should fail to open")
		}
	})

	t.Run("missing-file", func(t *testing.T) {
		if err := inspect(filepath.Join(dir, "nope.dsf"), false, false); err == nil {
			t.Error("missing file should fail")
		}
	})
}

// writeBatched writes one multi-iteration file the way the write-behind
// pipeline's batched persister does: several iterations' chunks in a single
// DSF.
func writeBatched(t *testing.T, dir string, iters int) string {
	t.Helper()
	path := filepath.Join(dir, "batched.dsf")
	w, err := dsf.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("writer", "batched-test")
	lay := layout.MustNew(layout.Float32, 16, 8)
	var metas []dsf.ChunkMeta
	var datas [][]byte
	for it := int64(0); it < int64(iters); it++ {
		for src := 0; src < 2; src++ {
			metas = append(metas, dsf.ChunkMeta{
				Name: "theta", Iteration: it, Source: src,
				Layout: lay, Codec: dsf.ShuffleGzip,
			})
			datas = append(datas, mpi.Float32sToBytes(goldenField(int(it)*10+src, 16*8)))
		}
	}
	pool := dsf.NewEncodePool(2)
	defer pool.Close()
	if err := w.WriteChunks(metas, datas, pool); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBatchedMultiIterationFiles drives dsf-inspect over multi-iteration
// (pipeline-batched) files: a healthy one lists and verifies like any
// single-iteration file, and truncated variants — a writer killed mid-batch
// — fail as cleanly.
func TestBatchedMultiIterationFiles(t *testing.T) {
	dir := t.TempDir()
	good := writeBatched(t, dir, 4)

	if err := inspect(good, true, true); err != nil {
		t.Fatalf("healthy batched file: %v", err)
	}
	r, err := dsf.Open(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Chunks()); got != 8 {
		t.Errorf("chunks = %d, want 8 (4 iterations × 2 sources)", got)
	}
	r.Close()

	for _, tc := range []struct {
		name string
		cut  func(n int) int
	}{
		{"mid-first-iteration", func(n int) int { return n / 8 }},
		{"mid-batch", func(n int) int { return n / 2 }},
		{"footer-lost", func(n int) int { return n - 10 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".dsf")
			corrupt(t, good, p, func(b []byte) []byte { return b[:tc.cut(len(b))] })
			err := inspect(p, true, false)
			if err == nil {
				t.Fatal("truncated batched file should fail to open")
			}
			if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "footer") {
				t.Errorf("error %v should identify truncation", err)
			}
		})
	}
}

// writeGoldenToBackend streams the golden chunk set into a storage backend
// object.
func writeGoldenToBackend(t *testing.T, b store.Backend, name string) [][]float32 {
	t.Helper()
	ow, err := b.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dsf.NewWriter(ow)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.MustNew(layout.Float32, 16, 8)
	var fields [][]float32
	for it := int64(0); it < 2; it++ {
		for src := 0; src < 2; src++ {
			field := goldenField(int(it)*10+src, 16*8)
			fields = append(fields, field)
			meta := dsf.ChunkMeta{Name: "theta", Iteration: it, Source: src,
				Layout: lay, Codec: dsf.ShuffleGzip}
			if err := w.WriteChunk(meta, mpi.Float32sToBytes(field)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ow.Commit(); err != nil {
		t.Fatal(err)
	}
	return fields
}

// The -store path: DSF objects written into either backend must list and
// verify through the manifest-resolving reader, including multipart
// object-store layouts.
func TestInspectStoreBackends(t *testing.T) {
	fileDir, objDir := t.TempDir(), t.TempDir()
	fb, err := store.NewFileStore(fileDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := store.NewObjStore(objDir, store.Options{PartSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	writeGoldenToBackend(t, fb, "golden.dsf")
	writeGoldenToBackend(t, ob, "golden.dsf")

	// All-object listing plus explicit names, with verification.
	if err := inspectStore("file://"+fileDir, nil, true, true); err != nil {
		t.Errorf("inspect file backend: %v", err)
	}
	if err := inspectStore("obj://"+objDir, nil, true, true); err != nil {
		t.Errorf("inspect obj backend: %v", err)
	}
	if err := inspectStore("obj://"+objDir, []string{"golden.dsf"}, true, false); err != nil {
		t.Errorf("inspect named object: %v", err)
	}
	if err := inspectStore("obj://"+objDir, []string{"missing.dsf"}, false, false); err == nil {
		t.Error("inspecting a missing object should fail")
	}
	if err := inspectStore("bogus://x", nil, false, false); err == nil {
		t.Error("unknown scheme should fail")
	}

	// A corrupted part must fail verification loudly.
	blobs, err := ob.List("cas/")
	if err != nil || len(blobs) == 0 {
		t.Fatalf("parts = %v, %v", blobs, err)
	}
	path := filepath.Join(objDir, "blobs", blobs[0].Name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectStore("obj://"+objDir, []string{"golden.dsf"}, true, false); err == nil {
		t.Error("corrupted part should fail verification")
	}
}

// Aggregated per-node objects must surface their fan-in provenance: the
// contributing servers (tier 1) and nodes (tier 2) recorded by the
// aggregation leader.
func TestInspectListsContributingServers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node0000_it000000.dsf")
	w, err := dsf.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetAttribute("writer", "damaris-aggregator")
	w.SetAttribute("aggregate", "core")
	w.SetAttribute("servers", "2,3")
	lay := layout.MustNew(layout.Float32, 8)
	if err := w.WriteChunk(dsf.ChunkMeta{Name: "theta", Layout: lay},
		mpi.Float32sToBytes(goldenField(1, 8))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := inspect(path, false, false); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "contributing servers: 2,3") {
		t.Errorf("inspect output lacks contributor line:\n%s", out)
	}
}

// The -gc path end to end: a crashed upload's parts survive the grace
// window, are reported by a dry run, and an aged force pass reclaims them
// while the committed object stays restorable.
func TestGCCommand(t *testing.T) {
	dir := t.TempDir()
	ob, err := store.NewObjStore(dir, store.Options{PartSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	writeGoldenToBackend(t, ob, "golden.dsf")
	// Abandoned upload leaves unreferenced parts.
	ow, err := ob.Create("abandoned.dsf")
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = byte(i % 251) // period coprime to the part size: distinct parts
	}
	if _, err := ow.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := ow.Abort(); err != nil {
		t.Fatal(err)
	}

	// Grace window: nothing reclaimed.
	if err := runGC("obj://"+dir, false, store.DefaultGCMinAge); err != nil {
		t.Fatal(err)
	}
	rep, err := ob.GC(store.GCOptions{DryRun: true, MinAge: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReclaimedBlobs != 2 {
		t.Fatalf("expected 2 reclaimable blobs after grace-window pass, got %+v", rep)
	}

	// Force pass (negative min age): the abandoned parts go.
	if err := runGC("obj://"+dir, false, -1); err != nil {
		t.Fatal(err)
	}
	after, err := ob.GC(store.GCOptions{DryRun: true, MinAge: -1})
	if err != nil {
		t.Fatal(err)
	}
	if after.ReclaimedBlobs != 0 {
		t.Errorf("force GC left %d reclaimable blobs", after.ReclaimedBlobs)
	}
	// The committed object still inspects and verifies.
	if err := inspectStore("obj://"+dir, []string{"golden.dsf"}, true, false); err != nil {
		t.Errorf("committed object broken after GC: %v", err)
	}
	// File backends cannot GC.
	if err := runGC("file://"+t.TempDir(), false, 0); err == nil {
		t.Error("file backend GC should report unsupported")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
