// Command damaris-gate is the stateless read gateway: it serves DSF data
// out of any storage backend URL over HTTP, so analysis and visualization
// clients read through gateway replicas instead of mounting the store.
//
// Usage:
//
//	damaris-gate -store obj:///data/objects -listen :8080
//	damaris-gate -store obj:///data/objects -listen :8081 \
//	    -peers http://host:8080,http://host:8081 -self 1
//
// With -peers, replicas partition objects by name hash (shared-nothing — no
// coordination, any number of replicas over one store): requests for an
// object another replica owns are 307-redirected there, or proxied with
// -forward. See docs/gateway.md for the API.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"damaris/internal/gateway"
	"damaris/internal/obs"
	"damaris/internal/store"
)

func main() {
	var (
		storeURL = flag.String("store", "", "storage backend URL to serve (required), e.g. obj:///data/objects")
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		peers    = flag.String("peers", "", "comma-separated base URLs of all gateway replicas (self included); empty = single replica")
		self     = flag.Int("self", 0, "this replica's index into -peers")
		forward  = flag.Bool("forward", false, "proxy misrouted requests to their owner instead of 307-redirecting")
		partMB   = flag.Int64("part-cache-mb", gateway.DefaultPartCacheBytes>>20, "LRU part cache budget in MiB")
		fetchers = flag.Int("fetch-workers", gateway.DefaultFetchWorkers, "bound on concurrent backend part fetches")
		tocN     = flag.Int("toc-cache", gateway.DefaultTOCEntries, "bound on cached decoded manifests/TOCs")
		statsDur = flag.Duration("stats-interval", 0, "print a stats line at this interval (0 = off)")
		probe    = flag.String("ready-probe", "", "backend object /readyz must Stat successfully before reporting ready (empty = no backend probe)")
	)
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "usage: damaris-gate -store URL [-listen addr] [-peers a,b,... -self i [-forward]]")
		os.Exit(2)
	}
	backend, err := store.Open(*storeURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "damaris-gate:", err)
		os.Exit(1)
	}
	defer backend.Close()

	// The telemetry plane folds into the gateway's own mux (no second
	// listener): /metrics, /metrics.json, /v1/metrics, /jitter, /readyz and
	// the federated /fleet/metrics (this replica merged with its -peers)
	// ride on -listen next to the data API. pprof does not — the gateway
	// mux is client-facing, and profiling stays on damaris-run's dedicated
	// -metrics-addr listener.
	cfg := gateway.Config{
		Backend:        backend,
		PartCacheBytes: *partMB << 20,
		FetchWorkers:   *fetchers,
		TOCEntries:     *tocN,
		Self:           *self,
		Forward:        *forward,
		Obs:            obs.NewPlane(0),
		ReadyProbe:     *probe,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	g, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "damaris-gate:", err)
		os.Exit(1)
	}

	if *statsDur > 0 {
		go func() {
			for range time.Tick(*statsDur) {
				s := g.Stats()
				fmt.Printf("gateway: req=%d toc(hit=%.0f%%) parts(hit=%.0f%% %dB/%d) gets=%d served=%dB routed=%d\n",
					s.Requests, 100*s.TOCHitRate(), 100*s.PartHitRate(),
					s.PartCacheBytes, s.PartCacheParts, s.BackendGets, s.BytesServed,
					s.Forwards+s.Redirects)
			}
		}()
	}

	replicas := len(cfg.Peers)
	if replicas == 0 {
		replicas = 1
	}
	fmt.Printf("damaris-gate: serving %s on %s (replica %d/%d)\n", *storeURL, *listen, *self, replicas)
	if err := http.ListenAndServe(*listen, g.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "damaris-gate:", err)
		os.Exit(1)
	}
}
