package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/mpi"
	"damaris/internal/obs"
	"damaris/internal/store"
)

// obsFederation is the pure-merge half of the fleet gates: Federate over a
// fixed source set must be cheap (bounded allocs per output sample), byte
// deterministic under shuffled source order, and exposition-clean.
type obsFederation struct {
	Sources              int     `json:"sources"`
	Samples              int     `json:"samples"`
	MergeAllocsPerOp     float64 `json:"merge_allocs_per_op"`
	MergeAllocsPerSample float64 `json:"merge_allocs_per_sample"`
	AllocsPerSampleBound float64 `json:"allocs_per_sample_bound"`
	OrderStable          bool    `json:"order_stable"`
	CheckClean           bool    `json:"check_clean"`
}

// obsFleet is the live aggregated-run half: a two-node mode="node" run whose
// shared plane serves /fleet/metrics, /epochs and /readyz while per-rank
// registries federate in-process.
type obsFleet struct {
	Epochs         int  `json:"epochs"`
	FleetBytes     int  `json:"fleet_bytes"`
	OrderStable    bool `json:"order_stable"`
	CheckClean     bool `json:"check_clean"`
	CounterSamples int  `json:"counter_samples"`
	CountersSummed bool `json:"counters_summed"`
	EpochsComplete bool `json:"epochs_complete"`
	ForwardSpans   int  `json:"forward_spans"`
	FanAckSpans    int  `json:"fanack_spans"`
	CrossRankOrig  bool `json:"cross_rank_origins"`
	Ready          bool `json:"ready_after_quiesce"`
}

// obsBrownout is the critical-path attribution gate: a mode="core" run with
// one node's object commits browned out; /epochs must blame the persist
// stage and a dedicated core of the browned node for every epoch.
type obsBrownout struct {
	Epochs          int            `json:"epochs"`
	BrownedServers  []int          `json:"browned_servers"`
	DominantStages  map[string]int `json:"dominant_stages"`
	SlowestOrigins  map[string]int `json:"slowest_origins"`
	PersistDominant bool           `json:"persist_dominant"`
	SlowestBrowned  bool           `json:"slowest_on_browned"`
}

// federationAllocsPerSampleBound bounds the merge path. Federate is a
// per-scrape string-keyed fold over every input sample (label keys, fold
// map, per-rank label copies), so the budget is per output sample and well
// above zero — ~17 measured; the gate catches the merge going accidentally
// quadratic or per-byte, not a missing fast path. The record paths stay
// 0-alloc; only rendering pays this.
const federationAllocsPerSampleBound = 24.0

// Fleet-run topology: two nodes of (1 client + 1 dedicated core), cross-node
// aggregation. Servers are world ranks 1 and 3; the lowest node's leader
// (rank 1) hosts the global tier.
const (
	fleetRanks     = 4
	fleetCoresPer  = 2
	fleetSteps     = 8
	fleetGlobal    = 1
	fleetForwarder = 3
)

// Brownout-run topology: two nodes of (2 clients + 2 dedicated cores),
// core-mode aggregation — each node's leader (ranks 2 and 6) commits one
// node%04d object per epoch. Node 1's commits are delayed, so its dedicated
// cores (6, 7) must surface as the critical path.
const (
	brownRanks    = 8
	brownCoresPer = 4
	brownSteps    = 6
	// Large enough that scheduler jitter (worker pickup latency under the
	// race detector on a loaded box can reach tens of ms) cannot rival the
	// injected delay in any epoch's stage totals.
	brownDelay = 150 * time.Millisecond
)

var brownedServers = []int{6, 7}

// fedBenchSources builds a deterministic multi-rank source set exercising
// every merge op: shared and disjoint counters, per-rank gauges, a shared
// histogram, so the alloc figure covers sum, min/max rollup and per-rank
// labeling paths.
func fedBenchSources(ranks int) []obs.FedSource {
	out := make([]obs.FedSource, ranks)
	for r := 0; r < ranks; r++ {
		reg := obs.NewRegistry()
		reg.Counter("fleet_bench_events_total").Add(int64(100 * (r + 1)))
		reg.Counter("fleet_bench_rank_total", "server", fmt.Sprint(r)).Add(int64(r + 1))
		reg.Gauge("fleet_bench_depth").Set(int64(r + 3))
		h := reg.Histogram("fleet_bench_seconds", obs.DefaultDurationBuckets())
		for i := 0; i < 100; i++ {
			h.Observe(1e-5 * float64(1+(i*7+r)%200))
		}
		out[r] = obs.FedSource{Rank: fmt.Sprint(r), Samples: reg.Gather()}
	}
	return out
}

// benchFederation measures and checks the pure merge. measureAllocs is off
// under the race detector, whose instrumentation would inflate the figure.
func benchFederation(measureAllocs bool) obsFederation {
	const ranks = 6
	sources := fedBenchSources(ranks)
	merged := obs.Federate(sources)
	fd := obsFederation{
		Sources:              ranks,
		Samples:              len(merged),
		AllocsPerSampleBound: federationAllocsPerSampleBound,
		CheckClean:           obs.CheckSamples(merged) == nil,
	}
	if measureAllocs && len(merged) > 0 {
		fd.MergeAllocsPerOp = testing.AllocsPerRun(200, func() {
			obs.Federate(sources)
		})
		fd.MergeAllocsPerSample = fd.MergeAllocsPerOp / float64(len(merged))
	}

	// Byte determinism under shuffled scrape arrival: render the canonical
	// order against a handful of deterministic permutations.
	var canon bytes.Buffer
	if err := obs.WriteSamples(&canon, merged); err != nil {
		return fd
	}
	fd.OrderStable = true
	perm := append([]obs.FedSource(nil), sources...)
	for trial := 0; trial < 5; trial++ {
		for i := range perm {
			j := (i*(trial+3) + trial) % len(perm)
			perm[i], perm[j] = perm[j], perm[i]
		}
		var buf bytes.Buffer
		if err := obs.WriteSamples(&buf, obs.Federate(perm)); err != nil ||
			!bytes.Equal(buf.Bytes(), canon.Bytes()) {
			fd.OrderStable = false
		}
	}
	return fd
}

// gateFederation turns a failed merge figure into an error.
func gateFederation(fd obsFederation, outPath string) error {
	if fd.MergeAllocsPerSample > fd.AllocsPerSampleBound {
		return fmt.Errorf("federation merge allocates %.2f/sample, bound %.1f (see %s)",
			fd.MergeAllocsPerSample, fd.AllocsPerSampleBound, outPath)
	}
	if !fd.OrderStable {
		return fmt.Errorf("federated exposition bytes depend on source order (see %s)", outPath)
	}
	if !fd.CheckClean {
		return fmt.Errorf("federated sample set fails exposition lint (see %s)", outPath)
	}
	return nil
}

// runObsFleet executes the two-node aggregated run and scrapes its fleet
// view: per-rank registries federate in-process on the shared plane, and the
// gates below hold the merged exposition to the per-rank scrapes.
func runObsFleet() (obsFleet, error) {
	var fl obsFleet
	plane := obs.NewPlane(1 << 16)
	fleet := obs.NewFederator()
	plane.SetFederator(fleet)

	backendDir, err := os.MkdirTemp("", "damaris-fleet-store")
	if err != nil {
		return fl, err
	}
	defer os.RemoveAll(backendDir)
	backend, err := store.NewObjStore(backendDir, store.Options{})
	if err != nil {
		return fl, err
	}
	defer backend.Close()

	clients := fleetRanks - fleetRanks/fleetCoresPer
	params := cm1.DefaultParams(clients, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 1))
	if err != nil {
		return fl, err
	}
	cfg.AggregateMode = "node"
	cfg.PersistWorkers = 1
	cfg.PersistQueueDepth = 2
	if err := cfg.Validate(); err != nil {
		return fl, err
	}

	rankRegs := map[int]*obs.Registry{}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	err = mpi.Run(fleetRanks, fleetCoresPer, func(comm *mpi.Comm) {
		me := comm.Rank()
		pers := &core.DSFPersister{Backend: backend, Node: me / fleetCoresPer, ServerID: me}
		pers.SetTracer(plane.Tracer())
		dep, err := core.Deploy(comm, cfg, nil, core.Options{Persister: pers, Obs: plane})
		if err != nil {
			fail(err)
			return
		}
		if !dep.IsClient() {
			reg := obs.NewRegistry()
			dep.Server.RegisterObs(reg)
			mu.Lock()
			rankRegs[me] = reg
			mu.Unlock()
			fleet.AddRegistry(fmt.Sprint(me), reg)
			if err := dep.Server.Run(); err != nil {
				fail(err)
			}
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			fail(err)
			return
		}
		b := cm1.NewDamarisBackend(dep.Client)
		if _, err := cm1.Run(sim, b, fleetSteps, 1); err != nil {
			fail(err)
		}
		if err := b.Close(); err != nil {
			fail(err)
		}
	})
	if err != nil {
		return fl, err
	}
	if firstErr != nil {
		return fl, firstErr
	}
	fl.Epochs = fleetSteps

	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	fleetProm, err := fetch(srv.URL, "/fleet/metrics")
	if err != nil {
		return fl, err
	}
	fl.FleetBytes = len(fleetProm)
	fl.CheckClean = obs.CheckSamples(fleet.Gather()) == nil

	// A second federator over the same quiesced registries, sources added in
	// the opposite order: the rendering must not care which scrape arrived
	// first.
	serverRanks := make([]int, 0, len(rankRegs))
	for r := range rankRegs {
		serverRanks = append(serverRanks, r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(serverRanks)))
	rev := obs.NewFederator()
	for _, r := range serverRanks {
		rev.AddRegistry(fmt.Sprint(r), rankRegs[r])
	}
	var revBuf bytes.Buffer
	if err := rev.WritePrometheus(&revBuf); err != nil {
		return fl, err
	}
	fl.OrderStable = bytes.Equal(revBuf.Bytes(), fleetProm)

	// Fleet counters must equal the sum of the per-rank scrapes byte for
	// byte (formatted the way the exposition formats them).
	body, err := fetch(srv.URL, "/fleet/metrics.json")
	if err != nil {
		return fl, err
	}
	var fleetDoc obs.MetricsDoc
	if err := json.Unmarshal(body, &fleetDoc); err != nil {
		return fl, fmt.Errorf("fleet JSON: %w", err)
	}
	rankDocs := make([][]obs.MetricJSON, 0, len(rankRegs))
	for _, reg := range rankRegs {
		rankDocs = append(rankDocs, reg.GatherJSON())
	}
	fl.CountersSummed = true
	for _, m := range fleetDoc.Metrics {
		if m.Kind != "counter" {
			continue
		}
		fl.CounterSamples++
		var sum float64
		for _, doc := range rankDocs {
			for _, rm := range doc {
				if rm.Name == m.Name && reflect.DeepEqual(rm.Labels, m.Labels) {
					sum += rm.Value
				}
			}
		}
		if strconv.FormatFloat(sum, 'g', -1, 64) != strconv.FormatFloat(m.Value, 'g', -1, 64) {
			fl.CountersSummed = false
		}
	}

	// /epochs names a dominant stage and a slowest origin for every epoch.
	body, err = fetch(srv.URL, "/epochs")
	if err != nil {
		return fl, err
	}
	var reports []obs.EpochReport
	if err := json.Unmarshal(body, &reports); err != nil {
		return fl, fmt.Errorf("epochs JSON: %w", err)
	}
	seen := map[int64]bool{}
	fl.EpochsComplete = true
	for _, r := range reports {
		if r.DominantStage == "" || r.SlowestOrigin < 0 {
			fl.EpochsComplete = false
		}
		seen[r.Epoch] = true
	}
	for e := int64(0); e < fleetSteps; e++ {
		if !seen[e] {
			fl.EpochsComplete = false
		}
	}

	// Cross-rank wire legs: one forward per remote leader per epoch on the
	// global host, one fanack back on the forwarder.
	fl.CrossRankOrig = true
	for _, sp := range plane.Tracer().Snapshot() {
		switch sp.Stage {
		case obs.StageForward:
			fl.ForwardSpans++
			if sp.Server != fleetGlobal || sp.Origin != fleetForwarder {
				fl.CrossRankOrig = false
			}
		case obs.StageFanAck:
			fl.FanAckSpans++
			if sp.Server != fleetForwarder || sp.Origin != fleetGlobal {
				fl.CrossRankOrig = false
			}
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		return fl, err
	}
	resp.Body.Close()
	fl.Ready = resp.StatusCode == 200
	return fl, nil
}

// gateFleet turns a failed fleet-run figure into an error.
func gateFleet(fl obsFleet, outPath string) error {
	if !fl.OrderStable {
		return fmt.Errorf("fleet exposition bytes depend on scrape order (see %s)", outPath)
	}
	if !fl.CheckClean {
		return fmt.Errorf("fleet exposition fails lint (see %s)", outPath)
	}
	if !fl.CountersSummed || fl.CounterSamples == 0 {
		return fmt.Errorf("fleet counters disagree with the sum of per-rank scrapes (%d counter samples, see %s)",
			fl.CounterSamples, outPath)
	}
	if !fl.EpochsComplete {
		return fmt.Errorf("/epochs is missing a committed epoch or leaves one unattributed (see %s)", outPath)
	}
	if fl.ForwardSpans != fleetSteps || fl.FanAckSpans != fleetSteps || !fl.CrossRankOrig {
		return fmt.Errorf("wire trace legs wrong: %d forward, %d fanack spans for %d epochs, origins ok=%v (see %s)",
			fl.ForwardSpans, fl.FanAckSpans, fleetSteps, fl.CrossRankOrig, outPath)
	}
	if !fl.Ready {
		return fmt.Errorf("/readyz not 200 after the run quiesced (see %s)", outPath)
	}
	return nil
}

// runObsBrownout executes the core-mode run with node 1's object commits
// delayed and asks the epoch analyzer who is slow. The delay rides the
// commit hook of node0001_* objects only, so the answer is deterministic:
// the persist stage, on node 1's dedicated cores.
func runObsBrownout() (obsBrownout, error) {
	br := obsBrownout{
		BrownedServers: brownedServers,
		DominantStages: map[string]int{},
		SlowestOrigins: map[string]int{},
	}
	plane := obs.NewPlane(1 << 16)

	backendDir, err := os.MkdirTemp("", "damaris-brownout-store")
	if err != nil {
		return br, err
	}
	defer os.RemoveAll(backendDir)
	fault := store.FaultFunc(func(op, name string) error {
		if op == store.OpCommit && strings.HasPrefix(name, "node0001") {
			time.Sleep(brownDelay)
		}
		return nil
	})
	backend, err := store.NewObjStore(backendDir, store.Options{Fault: fault})
	if err != nil {
		return br, err
	}
	defer backend.Close()

	clients := brownRanks - 2*(brownRanks/brownCoresPer)
	params := cm1.DefaultParams(clients, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 2))
	if err != nil {
		return br, err
	}
	cfg.AggregateMode = "core"
	cfg.PersistWorkers = 1
	// Depth 1 keeps the flow window at one iteration: with a deeper queue
	// the commit delay shows up as queue wait on the *next* epoch and the
	// attribution smears across stages; at depth 1 every browned epoch's
	// time sits squarely in persist.
	cfg.PersistQueueDepth = 1
	if err := cfg.Validate(); err != nil {
		return br, err
	}

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	err = mpi.Run(brownRanks, brownCoresPer, func(comm *mpi.Comm) {
		me := comm.Rank()
		pers := &core.DSFPersister{Backend: backend, Node: me / brownCoresPer, ServerID: me}
		pers.SetTracer(plane.Tracer())
		dep, err := core.Deploy(comm, cfg, nil, core.Options{Persister: pers, Obs: plane})
		if err != nil {
			fail(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				fail(err)
			}
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			fail(err)
			return
		}
		b := cm1.NewDamarisBackend(dep.Client)
		// Drive write phases by hand with a compute phase longer than the
		// injected commit delay: iteration N+1 then never queues behind
		// N's browned commit, so each epoch's delay lands in its own
		// persist stage instead of smearing into the next epoch's queue
		// wait — the attribution the gate checks must be deterministic.
		// The barrier keeps the clients in lockstep: the write-stage span
		// measures first-write-arrival to iteration-complete, and without
		// it the sleeps drift apart until client skew rivals brownDelay.
		for it := int64(0); it < brownSteps; it++ {
			sim.Step()
			time.Sleep(2 * brownDelay)
			dep.ClientComm.Barrier()
			if err := b.WritePhase(sim, it); err != nil {
				fail(err)
				break
			}
		}
		if err := b.Close(); err != nil {
			fail(err)
		}
	})
	if err != nil {
		return br, err
	}
	if firstErr != nil {
		return br, firstErr
	}

	reports := obs.AnalyzeEpochs(plane.Tracer().Snapshot())
	br.Epochs = len(reports)
	browned := map[int]bool{}
	for _, r := range brownedServers {
		browned[r] = true
	}
	br.PersistDominant = len(reports) > 0
	br.SlowestBrowned = len(reports) > 0
	for _, r := range reports {
		br.DominantStages[r.DominantStage]++
		br.SlowestOrigins[strconv.Itoa(r.SlowestOrigin)]++
		if r.DominantStage != "persist" {
			br.PersistDominant = false
		}
		if !browned[r.SlowestOrigin] {
			br.SlowestBrowned = false
		}
	}
	return br, nil
}

// gateBrownout turns a failed attribution into an error.
func gateBrownout(br obsBrownout, outPath string) error {
	if br.Epochs < brownSteps {
		return fmt.Errorf("brownout run reconstructed %d epochs, want >= %d (see %s)",
			br.Epochs, brownSteps, outPath)
	}
	if !br.PersistDominant {
		return fmt.Errorf("brownout epochs not attributed to persist: dominants %v (see %s)",
			br.DominantStages, outPath)
	}
	if !br.SlowestBrowned {
		return fmt.Errorf("slowest origin not on the browned node: origins %v, browned %v (see %s)",
			br.SlowestOrigins, br.BrownedServers, outPath)
	}
	return nil
}
