package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"damaris/internal/cluster"
	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/control"
	"damaris/internal/core"
	"damaris/internal/iostrat"
	"damaris/internal/mpi"
	"damaris/internal/store"
)

// ctlConvergence is one simulated controller curve of BENCH_control.json.
type ctlConvergence struct {
	Scenario string `json:"scenario"`
	Platform string `json:"platform"`
	Epochs   int    `json:"epochs"`
	// SettledEpoch is the first epoch of the curve's final constant run;
	// converged means it happened with margin before the end.
	SettledEpoch int           `json:"settled_epoch"`
	Converged    bool          `json:"converged"`
	Steady       control.Sizes `json:"steady"`
	// Bounded: every point stayed inside the configured limits.
	Bounded bool    `json:"bounded"`
	Ratio   float64 `json:"final_ratio"`
}

// ctlParity is the static-vs-auto determinism gate: the same workload run
// under static control and under auto control (different decision
// sequences by construction) must leave byte-identical DSF objects.
type ctlParity struct {
	Objects   int  `json:"objects"`
	Identical bool `json:"identical"`
}

// ctlBenchReport is BENCH_control.json.
type ctlBenchReport struct {
	Convergence []ctlConvergence `json:"convergence"`
	// ObserveAllocsPerOp is the steady-state allocation count of one
	// controller observation — it runs on the dedicated core's event loop
	// every iteration, so the budget is zero.
	ObserveAllocsPerOp int64     `json:"observe_allocs_per_op"`
	Parity             ctlParity `json:"parity"`
}

// runCtlConvergence simulates the controller on the paper's platforms: a
// healthy one (must shrink to the synchronous baseline) and an overloaded
// one (must open, and settle inside the limits).
func runCtlConvergence() ([]ctlConvergence, error) {
	lim := control.Limits{MaxWriters: 6, MaxWindow: 10, MaxEncode: 4}
	type scenario struct {
		name string
		plat cluster.Platform
		opt  iostrat.Options
		ini  control.Sizes
	}
	kraken := cluster.Kraken()
	grid := cluster.Grid5000()
	scenarios := []scenario{
		{
			name: "healthy-shrink",
			plat: kraken,
			opt:  iostrat.Options{Cores: 8 * kraken.CoresPerNode, Seed: 42},
			ini:  control.Sizes{Writers: 4, Window: 8},
		},
		{
			name: "overload-open",
			plat: grid,
			opt: iostrat.Options{Cores: 8 * grid.CoresPerNode, Seed: 7,
				BytesPerCore: grid.BytesPerCore * 200},
			ini: control.Sizes{Writers: 1, Window: 1},
		},
	}
	var out []ctlConvergence
	for _, sc := range scenarios {
		const epochs = 60
		pts, err := iostrat.SimulateControl(sc.plat, sc.opt,
			iostrat.ControlSimConfig{Epochs: epochs, Initial: sc.ini, Limits: lim})
		if err != nil {
			return nil, err
		}
		settled := iostrat.ControlSettled(pts)
		bounded := true
		for _, p := range pts {
			if p.Sizes.Writers < 1 || p.Sizes.Writers > lim.MaxWriters ||
				p.Sizes.Window < 1 || p.Sizes.Window > lim.MaxWindow {
				bounded = false
			}
		}
		last := pts[len(pts)-1]
		out = append(out, ctlConvergence{
			Scenario:     sc.name,
			Platform:     sc.plat.Name,
			Epochs:       epochs,
			SettledEpoch: settled,
			Converged:    settled >= 0 && settled <= epochs-5,
			Steady:       last.Sizes,
			Bounded:      bounded,
			Ratio:        last.Ratio,
		})
	}
	return out, nil
}

// benchObserve measures the controller's per-observation allocation count.
func benchObserve() int64 {
	r := testing.Benchmark(func(b *testing.B) {
		clk := control.NewManualClock(time.Unix(0, 0))
		tn, err := control.New(control.Config{
			Mode:    "auto",
			Initial: control.Sizes{Writers: 2, Window: 2, Encode: 2},
			Clock:   clk,
		})
		if err != nil {
			b.Fatal(err)
		}
		sample := control.Sample{FlushLatency: 0.01, Interval: 0.005,
			EncodeLatency: 0.002, StoreLatency: 0.001}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.Advance(control.DefaultInterval)
			tn.Observe(sample)
		}
	})
	return r.AllocsPerOp()
}

// ctlScheduler is a per-iteration (non-batch-aware) scheduler: it pins the
// pipeline to one-iteration batches so the off-mode DSF directory layout is
// deterministic and the parity run can compare whole directories.
type ctlScheduler struct{}

func (ctlScheduler) WaitTurn(int64) {}

// runCtlParityOnce executes one real middleware run (1 node x 4 cores, CM1
// write pattern) under the given control mode with injected store latency,
// and returns the output objects.
func runCtlParityOnce(mode string, lat time.Duration) (map[string][]byte, error) {
	dir, err := os.MkdirTemp("", "damaris-ctl-parity")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	backend, err := store.NewFileStore(dir, store.Options{Fault: store.Latency(lat)})
	if err != nil {
		return nil, err
	}
	defer backend.Close()

	const ranks, coresPerNode, steps, outputEvery = 4, 4, 12, 1
	params := cm1.DefaultParams(ranks-1, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 1))
	if err != nil {
		return nil, err
	}
	cfg.PersistWorkers = 1
	cfg.PersistQueueDepth = 1
	cfg.ControlMode = mode
	cfg.ControlIntervalMS = 1
	cfg.ControlMaxWriters = 4
	cfg.ControlMaxWindow = 6
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	pers := &core.DSFPersister{Backend: backend}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{
			Persister: pers, Scheduler: ctlScheduler{},
		})
		if err != nil {
			fail(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				fail(err)
			}
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			fail(err)
			return
		}
		b := cm1.NewDamarisBackend(dep.Client)
		if _, err := cm1.Run(sim, b, steps, outputEvery); err != nil {
			fail(err)
		}
		if err := b.Close(); err != nil {
			fail(err)
		}
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make(map[string][]byte)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || e.Name()[0] == '.' {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[e.Name()] = b
	}
	return out, nil
}

// runCtlParity compares static against auto under two different injected
// latencies — three distinct controller decision sequences over one
// workload; all must produce identical bytes.
func runCtlParity() (ctlParity, error) {
	ref, err := runCtlParityOnce("static", 0)
	if err != nil {
		return ctlParity{}, err
	}
	p := ctlParity{Objects: len(ref), Identical: len(ref) > 0}
	for _, lat := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond} {
		got, err := runCtlParityOnce("auto", lat)
		if err != nil {
			return p, err
		}
		if len(got) != len(ref) {
			p.Identical = false
			continue
		}
		for name, want := range ref {
			if string(got[name]) != string(want) {
				p.Identical = false
			}
		}
	}
	return p, nil
}

// runControlBench simulates controller convergence, measures the observe
// path's allocations, proves static-vs-auto byte parity on the real
// middleware path, and writes BENCH_control.json. Any failed check is an
// error — the bench doubles as the regression gate.
func runControlBench(outPath string) error {
	curves, err := runCtlConvergence()
	if err != nil {
		return err
	}
	for _, c := range curves {
		fmt.Printf("%-16s %-10s settled@%2d/%d steady writers=%d window=%d (bounded=%v ratio=%.2f)\n",
			c.Scenario, c.Platform, c.SettledEpoch, c.Epochs,
			c.Steady.Writers, c.Steady.Window, c.Bounded, c.Ratio)
	}

	allocs := benchObserve()
	fmt.Printf("observe: %d allocs/op steady state\n", allocs)

	parity, err := runCtlParity()
	if err != nil {
		return err
	}
	fmt.Printf("parity: %d objects, static-vs-auto byte-identical=%v\n", parity.Objects, parity.Identical)

	out, err := json.MarshalIndent(ctlBenchReport{
		Convergence:        curves,
		ObserveAllocsPerOp: allocs,
		Parity:             parity,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	for _, c := range curves {
		if !c.Converged || !c.Bounded {
			return fmt.Errorf("controller failed to converge inside bounds in %q (see %s)", c.Scenario, outPath)
		}
	}
	if allocs > 0 {
		return fmt.Errorf("controller observe path allocates %d/op, budget is 0 (see %s)", allocs, outPath)
	}
	if !parity.Identical {
		return fmt.Errorf("static-vs-auto output parity failed (see %s)", outPath)
	}
	return nil
}
