package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/control"
	"damaris/internal/core"
	"damaris/internal/metadata"
	"damaris/internal/mpi"
	"damaris/internal/store"
)

// shardParity is the sharding determinism gate: the same workload run with
// 1, 2 and 4 event-loop shards (stealing on and off) must leave DSF objects
// byte-identical to the classic single loop.
type shardParity struct {
	Objects   int  `json:"objects"`
	Variants  int  `json:"variants"`
	Identical bool `json:"identical"`
}

// shardStealRun summarizes the skewed run that proves work stealing engages:
// a slow synchronous persister blocks the flushing shard while its siblings
// idle, so at least one write must migrate.
type shardStealRun struct {
	Shards int   `json:"shards"`
	Events int64 `json:"events"`
	Steals int64 `json:"steals"`
	Stolen int64 `json:"stolen"`
}

// shardBudget is the spare-core budget gate, from a deterministic
// ManualClock tuner drive under sustained growth pressure: every decision
// must keep Writers+Encode+Reserved within the budget, and at least one
// growth veto must have fired (the pressure really did push at the limit).
type shardBudget struct {
	Budget    int   `json:"budget"`
	Reserved  int   `json:"reserved"`
	Decisions int64 `json:"decisions"`
	Vetoes    int64 `json:"vetoes"`
	// MaxUsed is the largest Writers+Encode+Reserved seen at any decision.
	MaxUsed   int  `json:"max_used"`
	Respected bool `json:"respected"`
}

// shardBenchReport is BENCH_shard.json.
type shardBenchReport struct {
	// RoutingAllocsPerOp is the allocation count of one sharded-store Get —
	// the hash-route + lookup hot path runs on every write notification, so
	// the budget is zero.
	RoutingAllocsPerOp int64 `json:"routing_allocs_per_op"`
	// TakeIteration timing at 1 vs 64 resident iterations: the iteration
	// index makes the cost O(entries in the taken iteration), so the large
	// residency may not cost more than ScalingGate x the small one (the old
	// full-store scan scaled ~64x here).
	TakeIterationNsSmall float64       `json:"take_iteration_ns_small"`
	TakeIterationNsLarge float64       `json:"take_iteration_ns_large"`
	ScalingGate          float64       `json:"scaling_gate"`
	Parity               shardParity   `json:"parity"`
	Steal                shardStealRun `json:"steal"`
	Budget               shardBudget   `json:"budget"`
}

// takeIterationScalingGate: large-residency TakeIteration may cost at most
// this multiple of the single-resident case. The bound is deliberately loose
// (shard iteration overhead, cache effects) — the regression it guards
// against is the O(whole store) scan, a ~64x blowup at this residency.
const takeIterationScalingGate = 8.0

// benchShardRouting measures one sharded-store Get (hash route + lookup).
func benchShardRouting() int64 {
	r := testing.Benchmark(func(b *testing.B) {
		s := metadata.NewSharded(4)
		for src := 0; src < 16; src++ {
			e := &metadata.Entry{
				Key:    metadata.Key{Name: "temperature", Iteration: 1, Source: src},
				Inline: make([]byte, 8),
			}
			if err := s.Put(e); err != nil {
				b.Fatal(err)
			}
		}
		k := metadata.Key{Name: "temperature", Iteration: 1, Source: 7}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := s.Get(k); !ok {
				b.Fatal("miss")
			}
		}
	})
	return r.AllocsPerOp()
}

// benchTakeIteration times TakeIteration of one 16-entry iteration with
// `resident` iterations in the store.
func benchTakeIteration(resident int) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		s := metadata.NewSharded(4)
		for it := int64(1); it < int64(resident); it++ {
			for src := 0; src < 16; src++ {
				e := &metadata.Entry{
					Key:    metadata.Key{Name: "var", Iteration: it, Source: src},
					Inline: make([]byte, 8),
				}
				if err := s.Put(e); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for src := 0; src < 16; src++ {
				e := &metadata.Entry{
					Key:    metadata.Key{Name: "var", Iteration: 0, Source: src},
					Inline: make([]byte, 8),
				}
				if err := s.Put(e); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if got := s.TakeIteration(0); len(got) != 16 {
				b.Fatalf("took %d entries", len(got))
			}
		}
	})
	return float64(r.NsPerOp())
}

// runShardOnce executes one real middleware run (1 node x 4 cores, CM1 write
// pattern) with the given config mutation and injected store latency.
// It returns the output objects and the server's pipeline stats.
func runShardOnce(mut func(*config.Config), lat time.Duration, steps int) (map[string][]byte, core.PipelineStats, error) {
	var zero core.PipelineStats
	dir, err := os.MkdirTemp("", "damaris-shard-bench")
	if err != nil {
		return nil, zero, err
	}
	defer os.RemoveAll(dir)
	var opts store.Options
	if lat > 0 {
		opts.Fault = store.Latency(lat)
	}
	backend, err := store.NewFileStore(dir, opts)
	if err != nil {
		return nil, zero, err
	}
	defer backend.Close()

	const ranks, coresPerNode, outputEvery = 4, 4, 1
	params := cm1.DefaultParams(ranks-1, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 1))
	if err != nil {
		return nil, zero, err
	}
	cfg.PersistWorkers = 1
	cfg.PersistQueueDepth = 1
	mut(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, zero, err
	}

	pers := &core.DSFPersister{Backend: backend}
	var mu sync.Mutex
	var firstErr error
	var ps core.PipelineStats
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	err = mpi.Run(ranks, coresPerNode, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{
			Persister: pers, Scheduler: ctlScheduler{},
		})
		if err != nil {
			fail(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				fail(err)
			}
			mu.Lock()
			ps = dep.Server.PipelineStats()
			mu.Unlock()
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			fail(err)
			return
		}
		b := cm1.NewDamarisBackend(dep.Client)
		if _, err := cm1.Run(sim, b, steps, outputEvery); err != nil {
			fail(err)
		}
		if err := b.Close(); err != nil {
			fail(err)
		}
	})
	if err != nil {
		return nil, zero, err
	}
	if firstErr != nil {
		return nil, zero, firstErr
	}

	out := make(map[string][]byte)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, zero, err
	}
	for _, e := range ents {
		if e.IsDir() || e.Name()[0] == '.' {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, zero, err
		}
		out[e.Name()] = b
	}
	return out, ps, nil
}

// runShardParity compares the classic loop against every shard-count x
// stealing variant under injected store latency (different interleavings by
// construction); all must produce identical bytes.
func runShardParity() (shardParity, error) {
	const steps, lat = 8, 500 * time.Microsecond
	ref, _, err := runShardOnce(func(*config.Config) {}, lat, steps)
	if err != nil {
		return shardParity{}, err
	}
	variants := []func(*config.Config){
		func(c *config.Config) { c.ShardCount = 1 },
		func(c *config.Config) { c.ShardCount = 2 },
		func(c *config.Config) { c.ShardCount = 4 },
		func(c *config.Config) { c.ShardCount = 2; c.ShardSteal = 0 },
		func(c *config.Config) { c.ShardCount = 4; c.ShardSteal = 1 },
	}
	p := shardParity{Objects: len(ref), Variants: len(variants), Identical: len(ref) > 0}
	for _, mut := range variants {
		got, _, err := runShardOnce(mut, lat, steps)
		if err != nil {
			return p, err
		}
		if len(got) != len(ref) {
			p.Identical = false
			continue
		}
		for name, want := range ref {
			if string(got[name]) != string(want) {
				p.Identical = false
			}
		}
	}
	return p, nil
}

// runShardSteal drives a skewed run: synchronous persistence (the flush
// blocks its shard loop inside the slow store) with a steal threshold of 1,
// so idle siblings must take work from the blocked shard's queue.
func runShardSteal() (shardStealRun, error) {
	_, ps, err := runShardOnce(func(c *config.Config) {
		c.PersistWorkers = 0
		c.ShardCount = 4
		c.ShardSteal = 1
	}, 2*time.Millisecond, 30)
	if err != nil {
		return shardStealRun{}, err
	}
	out := shardStealRun{Shards: len(ps.Shards)}
	for _, sh := range ps.Shards {
		out.Events += sh.Events
		out.Steals += sh.Steals
		out.Stolen += sh.Stolen
	}
	return out, nil
}

// runShardBudget drives the tuner deterministically under sustained growth
// pressure — flush latency far above the interval (wants more writers) and
// encode latency above store latency (wants more encoders) — against a
// budget it already fills. Every decision must stay within the budget.
func runShardBudget() (shardBudget, error) {
	const budget, reserved = 5, 2
	clk := control.NewManualClock(time.Unix(0, 0))
	tn, err := control.New(control.Config{
		Mode:     "auto",
		Initial:  control.Sizes{Writers: 2, Window: 2, Encode: 1},
		Limits:   control.Limits{MaxWriters: 8, MaxWindow: 8, MaxEncode: 4},
		Clock:    clk,
		Budget:   budget,
		Reserved: reserved,
	})
	if err != nil {
		return shardBudget{}, err
	}
	sample := control.Sample{
		FlushLatency:  0.05,
		Interval:      0.005,
		QueueDepth:    2,
		EncodeLatency: 0.004,
		StoreLatency:  0.001,
		RingFill:      -1,
	}
	out := shardBudget{Budget: budget, Reserved: reserved, Respected: true}
	for i := 0; i < 40; i++ {
		clk.Advance(control.DefaultInterval)
		sizes, _ := tn.Observe(sample)
		if used := sizes.Writers + sizes.Encode + reserved; used > out.MaxUsed {
			out.MaxUsed = used
		}
		if sizes.Writers+sizes.Encode+reserved > budget {
			out.Respected = false
		}
	}
	st := tn.Stats()
	out.Decisions = st.Decisions
	out.Vetoes = st.BudgetVetoes
	return out, nil
}

// runShardBench runs the event-loop sharding gates — 0-alloc routing,
// O(iteration) TakeIteration scaling, byte-identity across shard counts,
// steal engagement on a skewed run, and the spare-core budget — and writes
// BENCH_shard.json. Any failed gate is an error.
func runShardBench(outPath string) error {
	allocs := benchShardRouting()
	fmt.Printf("routing: %d allocs/op on the sharded-store Get path\n", allocs)

	small := benchTakeIteration(1)
	large := benchTakeIteration(64)
	fmt.Printf("take-iteration: %.0f ns at 1 resident iteration, %.0f ns at 64 (x%.2f)\n",
		small, large, large/small)

	parity, err := runShardParity()
	if err != nil {
		return err
	}
	fmt.Printf("parity: %d objects x %d shard variants, byte-identical=%v\n",
		parity.Objects, parity.Variants, parity.Identical)

	steal, err := runShardSteal()
	if err != nil {
		return err
	}
	fmt.Printf("steal: %d shards handled %d events; %d steals, %d stolen\n",
		steal.Shards, steal.Events, steal.Steals, steal.Stolen)

	budget, err := runShardBudget()
	if err != nil {
		return err
	}
	fmt.Printf("budget: %d spare cores (%d reserved); max used %d over %d decisions, %d growth vetoes, respected=%v\n",
		budget.Budget, budget.Reserved, budget.MaxUsed, budget.Decisions, budget.Vetoes, budget.Respected)

	out, err := json.MarshalIndent(shardBenchReport{
		RoutingAllocsPerOp:   allocs,
		TakeIterationNsSmall: small,
		TakeIterationNsLarge: large,
		ScalingGate:          takeIterationScalingGate,
		Parity:               parity,
		Steal:                steal,
		Budget:               budget,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if allocs > 0 {
		return fmt.Errorf("sharded-store routing path allocates %d/op, budget is 0 (see %s)", allocs, outPath)
	}
	if large > small*takeIterationScalingGate {
		return fmt.Errorf("TakeIteration scales with residency (%.0f ns -> %.0f ns, gate x%.0f; see %s)",
			small, large, takeIterationScalingGate, outPath)
	}
	if !parity.Identical {
		return fmt.Errorf("sharded output parity failed (see %s)", outPath)
	}
	if steal.Steals < 1 {
		return fmt.Errorf("no steal engaged on the skewed run (see %s)", outPath)
	}
	if !budget.Respected || budget.Vetoes < 1 {
		return fmt.Errorf("spare-core budget gate failed: respected=%v vetoes=%d (see %s)",
			budget.Respected, budget.Vetoes, outPath)
	}
	return nil
}
