package main

// The fleet-observability gates run under `go test -race` here as well as
// via `damaris-bench -obs-bench`: the live runs exercise the cross-rank
// trace propagation and in-process federation with the race detector on,
// which is where a torn merge or unsynchronized registry would surface.

import "testing"

func TestFederationGates(t *testing.T) {
	// Alloc measurement is skipped: race instrumentation inflates it; the
	// -obs-bench binary owns that figure.
	fd := benchFederation(false)
	if err := gateFederation(fd, "(test)"); err != nil {
		t.Fatal(err)
	}
	if fd.Samples == 0 || fd.Sources == 0 {
		t.Fatalf("federation bench merged nothing: %+v", fd)
	}
}

func TestFleetLiveGates(t *testing.T) {
	if testing.Short() {
		t.Skip("live aggregated run")
	}
	fl, err := runObsFleet()
	if err != nil {
		t.Fatal(err)
	}
	if err := gateFleet(fl, "(test)"); err != nil {
		t.Fatal(err)
	}
}

func TestBrownoutAttributionGates(t *testing.T) {
	if testing.Short() {
		t.Skip("live browned-out run")
	}
	br, err := runObsBrownout()
	if err != nil {
		t.Fatal(err)
	}
	if err := gateBrownout(br, "(test)"); err != nil {
		t.Fatal(err)
	}
}
