package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/obs"
	"damaris/internal/store"
)

// obsAllocs are the observe-path allocation figures BENCH_obs.json gates on:
// every one of them must be zero, or telemetry is perturbing the pipeline it
// measures.
type obsAllocs struct {
	CounterIncPerOp   float64 `json:"counter_inc_allocs_per_op"`
	GaugeSetPerOp     float64 `json:"gauge_set_allocs_per_op"`
	HistogramObsPerOp float64 `json:"histogram_observe_allocs_per_op"`
	TracerRecordPerOp float64 `json:"tracer_record_allocs_per_op"`
}

// obsPersistOverhead compares the DSF persist hot path with tracing off and
// on; the ratio gate bounds the cost of the span instrumentation.
type obsPersistOverhead struct {
	AllocsOff  int64   `json:"allocs_per_op_off"`
	AllocsOn   int64   `json:"allocs_per_op_on"`
	AllocRatio float64 `json:"alloc_ratio"`
	RatioBound float64 `json:"ratio_bound"`
	NsPerOpOff int64   `json:"ns_per_op_off"`
	NsPerOpOn  int64   `json:"ns_per_op_on"`
}

// obsLive is the end-to-end half of the report: a real brownout+spill run
// scraped over HTTP while its telemetry plane is attached.
type obsLive struct {
	Spilled           int64 `json:"spilled"`
	DegradedDecisions int64 `json:"degraded_decisions"`
	PrometheusBytes   int   `json:"prometheus_bytes"`
	PrometheusStable  bool  `json:"prometheus_stable"`
	JSONMetrics       int   `json:"json_metrics"`
	SpillMetricLive   bool  `json:"spill_metric_live"`
	TraceSpans        int   `json:"trace_spans"`
	SpillSpans        int   `json:"spill_spans"`
	PersistSpans      int   `json:"persist_spans"`
	ChromeEvents      int   `json:"chrome_events"`
	JitterStages      int   `json:"jitter_stages"`
	JitterExact       bool  `json:"jitter_exact"`
}

// obsReport is BENCH_obs.json.
type obsReport struct {
	Allocs           obsAllocs          `json:"allocs"`
	ExpositionStable bool               `json:"exposition_stable"`
	ExpositionBytes  int                `json:"exposition_bytes"`
	Persist          obsPersistOverhead `json:"persist_overhead"`
	Live             obsLive            `json:"live"`
	Federation       obsFederation      `json:"federation"`
	Fleet            obsFleet           `json:"fleet"`
	Brownout         obsBrownout        `json:"brownout_attribution"`
}

// persistAllocRatioBound bounds the tracing-on persist allocation overhead.
const persistAllocRatioBound = 1.10

// benchObsAllocs measures the observe paths with testing.AllocsPerRun.
func benchObsAllocs() obsAllocs {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_events_total")
	g := reg.Gauge("bench_depth")
	h := obs.NewHistogram(obs.DefaultDurationBuckets())
	tr := obs.NewTracer(1 << 10)
	start := time.Now()
	x := 1e-4
	return obsAllocs{
		CounterIncPerOp: testing.AllocsPerRun(1000, func() { c.Inc() }),
		GaugeSetPerOp:   testing.AllocsPerRun(1000, func() { g.Set(7) }),
		HistogramObsPerOp: testing.AllocsPerRun(1000, func() {
			h.Observe(x)
			x += 1e-6
		}),
		TracerRecordPerOp: testing.AllocsPerRun(1000, func() {
			tr.Record(obs.StagePersist, 3, 42, start, time.Millisecond, 4096, false)
		}),
	}
}

// obsExpositionFeed drives one registry with a fixed observation multiset
// under a seed-dependent shard assignment and interleaving. Two feeds with
// different seeds produce wildly different schedules over the same multiset;
// the fixed-point histogram sums make the rendered bytes identical anyway.
func obsExpositionFeed(reg *obs.Registry, seed int64) {
	const n = 20000
	const workers = 8
	h := reg.Histogram("bench_latency_seconds", obs.DefaultDurationBuckets())
	c := reg.Counter("bench_samples_total")
	// The permutation decides which goroutine observes which sample, and in
	// what order — seed-dependent scheduling over a seed-independent multiset.
	order := rand.New(rand.NewSource(seed)).Perm(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := w; j < n; j += workers {
				h.Observe(1e-6 * float64(1+order[j]))
				c.Inc()
			}
		}()
	}
	wg.Wait()
}

// checkExpositionStable renders two independently-built, differently
// interleaved registries and compares bytes.
func checkExpositionStable() (bool, int) {
	var bufs [2]bytes.Buffer
	for i, seed := range []int64{1, 99} {
		reg := obs.NewRegistry()
		obsExpositionFeed(reg, seed)
		reg.WritePrometheus(&bufs[i])
	}
	return bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()), bufs[0].Len()
}

// benchPersistOverhead runs the DSF persist benchmark workload with the
// lifecycle tracer detached and attached.
func benchPersistOverhead() (obsPersistOverhead, error) {
	entries, _ := persistWorkload()
	run := func(tr *obs.Tracer) (testing.BenchmarkResult, error) {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			dir, err := os.MkdirTemp("", "damaris-obs-bench")
			if err != nil {
				benchErr = err
				b.Skip()
			}
			defer os.RemoveAll(dir)
			pers := &core.DSFPersister{Dir: dir, Codec: dsf.ShuffleGzip, GzipLevel: dsf.DefaultGzipLevel}
			pers.SetTracer(tr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pers.Persist(int64(i%64), entries); err != nil {
					benchErr = err
					b.Skip()
				}
			}
		})
		return r, benchErr
	}
	off, err := run(nil)
	if err != nil {
		return obsPersistOverhead{}, err
	}
	on, err := run(obs.NewTracer(1 << 12))
	if err != nil {
		return obsPersistOverhead{}, err
	}
	res := obsPersistOverhead{
		AllocsOff:  off.AllocsPerOp(),
		AllocsOn:   on.AllocsPerOp(),
		RatioBound: persistAllocRatioBound,
		NsPerOpOff: off.NsPerOp(),
		NsPerOpOn:  on.NsPerOp(),
	}
	if off.AllocsPerOp() > 0 {
		res.AllocRatio = float64(on.AllocsPerOp()) / float64(off.AllocsPerOp())
	} else if on.AllocsPerOp() == 0 {
		res.AllocRatio = 1
	} else {
		res.AllocRatio = float64(on.AllocsPerOp())
	}
	return res, nil
}

// fetch GETs one path off the live server.
func fetch(base, path string) ([]byte, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// runObsLive repeats the resilience bench's brownout scenario with a
// telemetry plane attached and scrapes it over HTTP after the run quiesces:
// Prometheus text (twice — the bytes must repeat), the JSON exposition, the
// lifecycle trace in JSONL and Chrome forms, and the jitter document, which
// must match a direct JitterReport call exactly.
func runObsLive() (obsLive, error) {
	var live obsLive
	plane := obs.NewPlane(1 << 16)
	const baseLat = 10 * time.Millisecond
	fault := store.Chain(
		store.Latency(baseLat, store.OpPut),
		store.Brownout(time.Now().Add(-15*time.Second), 30*time.Second,
			5*baseLat, 0.2, store.OpPut),
	)
	run, _, err := runResilienceOnce("obs-brownout", fault, plane)
	if err != nil {
		return live, err
	}
	live.Spilled = run.Spilled
	live.DegradedDecisions = run.DegradedDecisions

	// A scraper rejects the whole page on a duplicate series or a split
	// TYPE block, so a colliding family name must fail the bench, not the
	// first real scrape.
	if err := plane.Registry().CheckExposition(); err != nil {
		return live, fmt.Errorf("live exposition unparseable: %w", err)
	}

	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	prom1, err := fetch(srv.URL, "/metrics")
	if err != nil {
		return live, err
	}
	prom2, err := fetch(srv.URL, "/metrics")
	if err != nil {
		return live, err
	}
	live.PrometheusBytes = len(prom1)
	live.PrometheusStable = bytes.Equal(prom1, prom2)
	if !bytes.Contains(prom1, []byte("damaris_spill_spilled_total")) ||
		!bytes.Contains(prom1, []byte("damaris_stage_seconds_bucket")) {
		return live, fmt.Errorf("prometheus scrape is missing expected families")
	}

	body, err := fetch(srv.URL, "/v1/metrics")
	if err != nil {
		return live, err
	}
	var doc obs.MetricsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return live, fmt.Errorf("metrics JSON: %w", err)
	}
	live.JSONMetrics = len(doc.Metrics)
	var spilledScraped float64
	for _, m := range doc.Metrics {
		if m.Name == "damaris_spill_spilled_total" {
			spilledScraped += m.Value
		}
	}
	live.SpillMetricLive = int64(spilledScraped) == run.Spilled && run.Spilled > 0

	body, err = fetch(srv.URL, "/trace")
	if err != nil {
		return live, err
	}
	spans, err := obs.ReadSpansJSONL(bytes.NewReader(body))
	if err != nil {
		return live, fmt.Errorf("trace JSONL: %w", err)
	}
	live.TraceSpans = len(spans)
	for _, sp := range spans {
		switch sp.Stage {
		case obs.StageSpill:
			live.SpillSpans++
		case obs.StagePersist:
			live.PersistSpans++
		}
	}

	body, err = fetch(srv.URL, "/trace?format=chrome")
	if err != nil {
		return live, err
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		return live, fmt.Errorf("chrome trace: %w", err)
	}
	live.ChromeEvents = len(chrome.TraceEvents)

	body, err = fetch(srv.URL, "/jitter")
	if err != nil {
		return live, err
	}
	var scraped []obs.StageJitter
	if err := json.Unmarshal(body, &scraped); err != nil {
		return live, fmt.Errorf("jitter: %w", err)
	}
	direct := plane.JitterReport()
	live.JitterStages = len(scraped)
	live.JitterExact = reflect.DeepEqual(scraped, direct)
	return live, nil
}

// runObsBench executes the telemetry-plane gates end to end and writes
// BENCH_obs.json: 0-alloc observe paths, byte-stable exposition under
// concurrency, bounded persist-path tracing overhead, and a live scraped
// brownout run whose spill/degraded activity and jitter figures are visible
// (and exact) over HTTP. The fleet half follows: federation merge allocs
// and scrape-order byte identity, a live two-node aggregated run whose
// /fleet/metrics counters must equal the sum of the per-rank scrapes with
// complete /epochs attribution and both wire trace legs present, and a
// browned-out run the epoch analyzer must pin on the persist stage of the
// browned node's dedicated cores.
func runObsBench(outPath string) error {
	allocs := benchObsAllocs()
	fmt.Printf("observe allocs/op: counter=%.1f gauge=%.1f histogram=%.1f record=%.1f\n",
		allocs.CounterIncPerOp, allocs.GaugeSetPerOp,
		allocs.HistogramObsPerOp, allocs.TracerRecordPerOp)

	stable, nbytes := checkExpositionStable()
	fmt.Printf("exposition: %d bytes, stable across interleavings=%v\n", nbytes, stable)

	persist, err := benchPersistOverhead()
	if err != nil {
		return err
	}
	fmt.Printf("persist overhead: off=%d on=%d allocs/op (ratio %.3f, bound %.2f); %d -> %d ns/op\n",
		persist.AllocsOff, persist.AllocsOn, persist.AllocRatio, persist.RatioBound,
		persist.NsPerOpOff, persist.NsPerOpOn)

	live, err := runObsLive()
	if err != nil {
		return err
	}
	fmt.Printf("live: spilled=%d degraded=%d; %d metrics, %d spans (%d spill, %d persist), %d chrome events, %d jitter stages (exact=%v)\n",
		live.Spilled, live.DegradedDecisions, live.JSONMetrics, live.TraceSpans,
		live.SpillSpans, live.PersistSpans, live.ChromeEvents, live.JitterStages, live.JitterExact)

	fed := benchFederation(true)
	fmt.Printf("federation: %d sources -> %d samples, %.2f allocs/sample (bound %.1f), order-stable=%v lint-clean=%v\n",
		fed.Sources, fed.Samples, fed.MergeAllocsPerSample, fed.AllocsPerSampleBound,
		fed.OrderStable, fed.CheckClean)

	fleet, err := runObsFleet()
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d epochs, %d fleet bytes (order-stable=%v), %d counters summed=%v, epochs-complete=%v, %d forward/%d fanack spans, ready=%v\n",
		fleet.Epochs, fleet.FleetBytes, fleet.OrderStable, fleet.CounterSamples,
		fleet.CountersSummed, fleet.EpochsComplete, fleet.ForwardSpans, fleet.FanAckSpans, fleet.Ready)

	brown, err := runObsBrownout()
	if err != nil {
		return err
	}
	fmt.Printf("brownout attribution: %d epochs, dominants=%v, slowest=%v (browned servers %v)\n",
		brown.Epochs, brown.DominantStages, brown.SlowestOrigins, brown.BrownedServers)

	rep := obsReport{
		Allocs:           allocs,
		ExpositionStable: stable,
		ExpositionBytes:  nbytes,
		Persist:          persist,
		Live:             live,
		Federation:       fed,
		Fleet:            fleet,
		Brownout:         brown,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	// Gates.
	if allocs.CounterIncPerOp != 0 || allocs.GaugeSetPerOp != 0 ||
		allocs.HistogramObsPerOp != 0 || allocs.TracerRecordPerOp != 0 {
		return fmt.Errorf("observe path allocates (counter=%.1f gauge=%.1f histogram=%.1f record=%.1f), budget is 0 (see %s)",
			allocs.CounterIncPerOp, allocs.GaugeSetPerOp, allocs.HistogramObsPerOp,
			allocs.TracerRecordPerOp, outPath)
	}
	if !stable {
		return fmt.Errorf("exposition bytes differ across goroutine interleavings of one observation multiset (see %s)", outPath)
	}
	if persist.AllocRatio > persist.RatioBound {
		return fmt.Errorf("tracing-on persist allocs %.3fx the tracing-off baseline, bound %.2fx (see %s)",
			persist.AllocRatio, persist.RatioBound, outPath)
	}
	if live.Spilled == 0 || live.DegradedDecisions == 0 {
		return fmt.Errorf("live run never engaged spill/degraded mode — nothing to observe (see %s)", outPath)
	}
	if !live.PrometheusStable {
		return fmt.Errorf("back-to-back quiesced Prometheus scrapes differ (see %s)", outPath)
	}
	if !live.SpillMetricLive {
		return fmt.Errorf("scraped damaris_spill_spilled_total disagrees with the run's spill count (see %s)", outPath)
	}
	if live.SpillSpans == 0 || live.PersistSpans == 0 {
		return fmt.Errorf("lifecycle trace is missing spill or persist spans (spill=%d persist=%d, see %s)",
			live.SpillSpans, live.PersistSpans, outPath)
	}
	if live.ChromeEvents != live.TraceSpans || live.TraceSpans == 0 {
		return fmt.Errorf("chrome trace has %d events for %d retained spans (see %s)",
			live.ChromeEvents, live.TraceSpans, outPath)
	}
	if !live.JitterExact || live.JitterStages == 0 {
		return fmt.Errorf("scraped /jitter does not match a direct JitterReport (see %s)", outPath)
	}
	if err := gateFederation(fed, outPath); err != nil {
		return err
	}
	if err := gateFleet(fleet, outPath); err != nil {
		return err
	}
	return gateBrownout(brown, outPath)
}
