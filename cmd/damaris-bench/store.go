package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/store"
)

// storeBenchResult is one row of BENCH_store.json — the storage-backend
// figures tracked across PRs. The dev boxes are often single-CPU, so the
// tracked signals are allocation counts and determinism, not parallel
// speedups.
type storeBenchResult struct {
	Name        string  `json:"name"`
	Backend     string  `json:"backend"`
	PartSize    int64   `json:"part_size,omitempty"`
	PutWorkers  int     `json:"put_workers,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// storeBenchChecks records the correctness assertions the bench run proves
// alongside the numbers: identical input must yield identical manifests
// (content addressing is deterministic), re-uploads must dedupe, and the
// restored byte stream must match across backends.
type storeBenchChecks struct {
	DeterministicManifests bool  `json:"deterministic_manifests"`
	DedupeHits             int64 `json:"dedupe_hits"`
	DedupeAllParts         bool  `json:"dedupe_all_parts"`
	ByteIdenticalRestore   bool  `json:"byte_identical_restore"`
}

// benchPersist measures one backend's persist path with the shared
// 8-chunk/4-MiB workload.
func benchPersist(name string, open func(dir string) (store.Backend, error),
	partSize int64, putWorkers int) (storeBenchResult, error) {
	entries, total := persistWorkload()
	var openErr error
	r := testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "damaris-store-bench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		backend, err := open(dir)
		if err != nil {
			openErr = err
			b.Fatal(err)
		}
		defer backend.Close()
		pers := &core.DSFPersister{Backend: backend, Codec: dsf.None}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pers.Persist(int64(i%64), entries); err != nil {
				b.Fatal(err)
			}
		}
	})
	if openErr != nil {
		return storeBenchResult{}, openErr
	}
	scheme := "file"
	if partSize > 0 {
		scheme = "obj"
	}
	return storeBenchResult{
		Name:        name,
		Backend:     scheme,
		PartSize:    partSize,
		PutWorkers:  putWorkers,
		NsPerOp:     r.NsPerOp(),
		MBPerS:      float64(total) / 1e6 / (float64(r.NsPerOp()) / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runStoreChecks proves the objstore's determinism, dedupe and cross-backend
// byte identity on a fixed workload.
func runStoreChecks(partSize int64) (storeBenchChecks, error) {
	var checks storeBenchChecks
	entries, _ := persistWorkload()

	dir, err := os.MkdirTemp("", "damaris-store-checks")
	if err != nil {
		return checks, err
	}
	defer os.RemoveAll(dir)

	obj, err := store.NewObjStore(filepath.Join(dir, "obj"), store.Options{PartSize: partSize})
	if err != nil {
		return checks, err
	}
	fileB, err := store.NewFileStore(filepath.Join(dir, "file"), store.Options{})
	if err != nil {
		return checks, err
	}

	// The same iteration persisted under two object names and through the
	// file backend.
	op := &core.DSFPersister{Backend: obj, Codec: dsf.None}
	fp := &core.DSFPersister{Backend: fileB, Codec: dsf.None}
	if err := op.Persist(0, entries); err != nil {
		return checks, err
	}
	before := obj.Stats()
	// The copy goes through the persister's own write path under a second
	// name, so the two streams are byte-identical by construction and every
	// content-addressed part must dedupe.
	if err := op.PersistAs("copy.dsf", entries); err != nil {
		return checks, err
	}
	after := obj.Stats()
	if err := fp.Persist(0, entries); err != nil {
		return checks, err
	}

	orig := op.Files()[0]
	m1, err := obj.Manifest(orig)
	if err != nil {
		return checks, err
	}
	m2, err := obj.Manifest("copy.dsf")
	if err != nil {
		return checks, err
	}
	checks.DeterministicManifests = len(m1.Parts) == len(m2.Parts)
	for i := range m1.Parts {
		if i >= len(m2.Parts) || m1.Parts[i].SHA256 != m2.Parts[i].SHA256 {
			checks.DeterministicManifests = false
		}
	}
	checks.DedupeHits = after.DedupeHits - before.DedupeHits
	checks.DedupeAllParts = checks.DedupeHits == int64(len(m2.Parts))

	objBytes, err := readObject(obj, orig)
	if err != nil {
		return checks, err
	}
	fileBytes, err := readObject(fileB, fp.Files()[0])
	if err != nil {
		return checks, err
	}
	checks.ByteIdenticalRestore = bytes.Equal(objBytes, fileBytes)
	return checks, nil
}

// readObject returns a committed object's full byte stream.
func readObject(b store.Backend, name string) ([]byte, error) {
	r, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// runStoreBench benchmarks the persist path through both storage backends
// and writes BENCH_store.json (numbers + correctness checks). A failed
// check is an error: the bench doubles as the determinism regression gate.
func runStoreBench(outPath string) error {
	const partSize = 256 << 10 // small parts so the workload spans many
	cases := []struct {
		name       string
		partSize   int64
		putWorkers int
		open       func(dir string) (store.Backend, error)
	}{
		{name: "persist_filestore", open: func(dir string) (store.Backend, error) {
			return store.NewFileStore(dir, store.Options{})
		}},
		{name: "persist_objstore_w1", partSize: partSize, putWorkers: 1,
			open: func(dir string) (store.Backend, error) {
				return store.NewObjStore(dir, store.Options{PartSize: partSize, PutWorkers: 1})
			}},
		{name: "persist_objstore_w4", partSize: partSize, putWorkers: 4,
			open: func(dir string) (store.Backend, error) {
				return store.NewObjStore(dir, store.Options{PartSize: partSize, PutWorkers: 4})
			}},
	}
	var results []storeBenchResult
	for _, c := range cases {
		r, err := benchPersist(c.name, c.open, c.partSize, c.putWorkers)
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("%-24s %12d ns/op %8.1f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
	}

	checks, err := runStoreChecks(partSize)
	if err != nil {
		return err
	}
	fmt.Printf("checks: deterministic_manifests=%v dedupe_hits=%d dedupe_all_parts=%v byte_identical_restore=%v\n",
		checks.DeterministicManifests, checks.DedupeHits, checks.DedupeAllParts, checks.ByteIdenticalRestore)

	out, err := json.MarshalIndent(struct {
		Benchmarks []storeBenchResult `json:"benchmarks"`
		Checks     storeBenchChecks   `json:"checks"`
	}{results, checks}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if !checks.DeterministicManifests || !checks.DedupeAllParts || !checks.ByteIdenticalRestore {
		return fmt.Errorf("store determinism checks failed (see %s)", outPath)
	}
	return nil
}
