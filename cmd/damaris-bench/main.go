// Command damaris-bench regenerates the paper's tables and figures from the
// simulated platforms, printing paper-reported values next to measured ones.
//
// Usage:
//
//	damaris-bench                  # run every experiment
//	damaris-bench -experiment fig2 # one experiment
//	damaris-bench -list            # list experiment IDs
//	damaris-bench -seed 7          # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"damaris/internal/experiment"
)

func main() {
	var (
		id   = flag.String("experiment", "all", "experiment ID to run, or 'all'")
		seed = flag.Int64("seed", 42, "deterministic seed for all experiments")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return
	}

	if *id == "all" {
		tables, err := experiment.RunAll(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return
	}

	t, err := experiment.Run(*id, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "damaris-bench:", err)
		os.Exit(1)
	}
	fmt.Println(t.Render())
}
