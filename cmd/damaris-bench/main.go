// Command damaris-bench regenerates the paper's tables and figures from the
// simulated platforms, printing paper-reported values next to measured ones.
//
// Usage:
//
//	damaris-bench                  # run every experiment
//	damaris-bench -experiment fig2 # one experiment
//	damaris-bench -list            # list experiment IDs
//	damaris-bench -seed 7          # change the deterministic seed
//	damaris-bench -persist-bench   # benchmark the DSF persist hot path and
//	                               # emit BENCH_persist.json (MB/s, allocs/op)
//	damaris-bench -store-bench     # benchmark the storage backends and emit
//	                               # BENCH_store.json (allocs + determinism,
//	                               # dedupe and byte-identity checks)
//	damaris-bench -gateway-bench   # benchmark the read gateway and emit
//	                               # BENCH_gateway.json (cold/warm latency
//	                               # ratio, warm allocs/op, cache hit rates)
//	damaris-bench -resilience-bench # run the overload-resilience gates
//	                               # (scratch spill under brownout, hedged
//	                               # puts over a hung primary) and emit
//	                               # BENCH_resilience.json
//	damaris-bench -obs-bench       # run the telemetry-plane gates (0-alloc
//	                               # observe paths, byte-stable exposition,
//	                               # live scraped brownout run) plus the
//	                               # fleet gates (federation merge allocs and
//	                               # scrape-order byte identity, live two-node
//	                               # /fleet/metrics counter-sum check, epoch
//	                               # critical-path attribution of a browned-
//	                               # out persist stage) and emit BENCH_obs.json
//	damaris-bench -shard-bench     # run the event-loop sharding gates (0-alloc
//	                               # shard routing, O(iteration) TakeIteration
//	                               # scaling, byte identity across shard
//	                               # counts, steal engagement on a skewed run,
//	                               # spare-core budget) and emit BENCH_shard.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"damaris/internal/experiment"
)

func main() {
	var (
		id           = flag.String("experiment", "all", "experiment ID to run, or 'all'")
		seed         = flag.Int64("seed", 42, "deterministic seed for all experiments")
		list         = flag.Bool("list", false, "list experiment IDs and exit")
		persistBench = flag.Bool("persist-bench", false,
			"benchmark the DSF persist path across encode worker counts and emit a JSON report")
		benchOut   = flag.String("bench-out", "BENCH_persist.json", "output path for -persist-bench")
		storeBench = flag.Bool("store-bench", false,
			"benchmark the storage backends (file + content-addressed object store) and emit a JSON report with determinism checks")
		storeOut       = flag.String("store-out", "BENCH_store.json", "output path for -store-bench")
		aggregateBench = flag.Bool("aggregate-bench", false,
			"benchmark the aggregation layer (merge allocs, arrival-order determinism, off-mode store parity, platform throughput curves) and emit a JSON report")
		aggregateOut = flag.String("aggregate-out", "BENCH_aggregate.json", "output path for -aggregate-bench")
		controlBench = flag.Bool("control-bench", false,
			"benchmark the adaptive control plane (simulated convergence curves, observe-path allocs, static-vs-auto byte parity) and emit a JSON report")
		controlOut   = flag.String("control-out", "BENCH_control.json", "output path for -control-bench")
		gatewayBench = flag.Bool("gateway-bench", false,
			"benchmark the read gateway (cold vs warm full-object reads, warm-path allocs, cache hit rates, zero-backend-Gets warm gate) and emit a JSON report")
		gatewayOut      = flag.String("gateway-out", "BENCH_gateway.json", "output path for -gateway-bench")
		resilienceBench = flag.Bool("resilience-bench", false,
			"run the overload-resilience gates (spill under brownout with byte-identity and bounded stall, hedged puts over a hung primary) and emit a JSON report")
		resilienceOut = flag.String("resilience-out", "BENCH_resilience.json", "output path for -resilience-bench")
		obsBench      = flag.Bool("obs-bench", false,
			"run the telemetry-plane and fleet gates (0-alloc observe paths, byte-stable exposition, federation merge determinism, live /fleet/metrics counter-sum and epoch critical-path attribution runs) and emit a JSON report")
		obsOut     = flag.String("obs-out", "BENCH_obs.json", "output path for -obs-bench")
		shardBench = flag.Bool("shard-bench", false,
			"run the event-loop sharding gates (0-alloc shard routing, O(iteration) TakeIteration scaling, byte identity across shard counts, steal engagement, spare-core budget) and emit a JSON report")
		shardOut = flag.String("shard-out", "BENCH_shard.json", "output path for -shard-bench")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return
	}

	if *persistBench {
		if err := runPersistBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *storeBench {
		if err := runStoreBench(*storeOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *aggregateBench {
		if err := runAggregateBench(*aggregateOut, *storeOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *controlBench {
		if err := runControlBench(*controlOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *gatewayBench {
		if err := runGatewayBench(*gatewayOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *resilienceBench {
		if err := runResilienceBench(*resilienceOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *obsBench {
		if err := runObsBench(*obsOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *shardBench {
		if err := runShardBench(*shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *id == "all" {
		tables, err := experiment.RunAll(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "damaris-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		return
	}

	t, err := experiment.Run(*id, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "damaris-bench:", err)
		os.Exit(1)
	}
	fmt.Println(t.Render())
}
