package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"damaris/internal/cm1"
	"damaris/internal/config"
	"damaris/internal/core"
	"damaris/internal/mpi"
	"damaris/internal/obs"
	"damaris/internal/store"
)

// resilienceRun is one middleware run's degraded-mode telemetry in
// BENCH_resilience.json.
type resilienceRun struct {
	Scenario string `json:"scenario"`
	// Iterations is the per-client output-phase count; iteration seconds
	// summarize the client-visible write-phase durations across all clients.
	Iterations      int     `json:"iterations"`
	MaxIterSeconds  float64 `json:"max_iter_seconds"`
	MeanIterSeconds float64 `json:"mean_iter_seconds"`
	// Spill telemetry after the run fully drained.
	Spilled  int64 `json:"spilled"`
	Replayed int64 `json:"replayed"`
	Pending  int   `json:"pending"`
	Stranded int   `json:"stranded"`
	// DegradedDecisions counts controller decisions taken while the spill
	// backlog was live (window growth vetoed).
	DegradedDecisions int64 `json:"degraded_decisions"`
	// Store-side absorption of the injected faults.
	StoreRetries  int64 `json:"store_retries"`
	StoreBackoffs int64 `json:"store_backoffs"`
	// Window is the effective (post-tune) flow-window depth at the end of
	// the run; MaxInFlight the pipeline's high-water mark.
	Window      int `json:"window"`
	MaxInFlight int `json:"max_in_flight"`
}

// hedgeResult is the hung-primary part of BENCH_resilience.json: with the
// primary target hung forever on every write-plane op, hedged puts to the
// replica must keep the middleware's durability watermark advancing.
type hedgeResult struct {
	Completed      bool  `json:"completed"`
	Iterations     int64 `json:"iterations_durable"`
	Failures       int64 `json:"iteration_failures"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	PutTimeouts    int64 `json:"put_timeouts"`
	DurableObjects int   `json:"durable_objects"`
}

// resilienceReport is BENCH_resilience.json.
type resilienceReport struct {
	Healthy  resilienceRun `json:"healthy"`
	Brownout resilienceRun `json:"brownout"`
	// StallFactor is the worst brownout write phase over the healthy
	// baseline (floored — see stallBase); the gate bounds it.
	StallFactor float64 `json:"stall_factor"`
	StallBound  float64 `json:"stall_bound"`
	// BytesIdentical: after the spill backlog drained, the brownout run's
	// object store (blobs and manifests) is byte-identical to the healthy
	// run's — degraded mode loses and reorders nothing.
	BytesIdentical bool        `json:"bytes_identical"`
	StoredFiles    int         `json:"stored_files"`
	Hedge          hedgeResult `json:"hedge"`
}

// stallBase floors the healthy baseline so the stall factor is not inflated
// by a near-zero denominator on an idle machine.
const stallBase = 5e-3 // seconds

// resilienceSteps/outputEvery size the CM1 workload: one output phase per
// step keeps the pipeline under continuous pressure.
const (
	resilienceSteps  = 36
	resilienceRanks  = 4 // 1 node x 4 cores: 3 clients + 1 dedicated core
	hedgeBenchSteps  = 8
	hedgeBenchBudget = 2 * time.Minute
)

// runResilienceOnce executes one real middleware run (CM1 write pattern,
// write-behind pipeline with scratch spill, auto control) against an obj://
// backend wrapped in the given fault, and returns its telemetry plus the
// backend's stored bytes (blobs/ and manifests/ trees). A non-nil plane
// attaches the telemetry registry and lifecycle tracer (the obs bench scrapes
// it live); nil runs untraced.
func runResilienceOnce(scenario string, fault store.Fault, plane *obs.Plane) (resilienceRun, map[string][]byte, error) {
	run := resilienceRun{Scenario: scenario, Iterations: resilienceSteps}
	backendDir, err := os.MkdirTemp("", "damaris-resilience-store")
	if err != nil {
		return run, nil, err
	}
	defer os.RemoveAll(backendDir)
	spillDir, err := os.MkdirTemp("", "damaris-resilience-spill")
	if err != nil {
		return run, nil, err
	}
	defer os.RemoveAll(spillDir)

	backend, err := store.NewObjStore(backendDir, store.Options{
		Fault:       fault,
		PutAttempts: 10, // the brownout's error rate must be absorbable
	})
	if err != nil {
		return run, nil, err
	}
	defer backend.Close()

	params := cm1.DefaultParams(resilienceRanks-1, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 1))
	if err != nil {
		return run, nil, err
	}
	// A 1-deep queue with a wider window bound: under backend latency the
	// auto controller opens the flow window past the queue, the event loop
	// overflows, and the scratch spill engages — then degraded mode vetoes
	// further growth until the backlog replays.
	cfg.PersistWorkers = 1
	cfg.PersistQueueDepth = 1
	cfg.ControlMode = "auto"
	cfg.ControlIntervalMS = 1
	cfg.ControlMaxWriters = 1 // keep one writer so queue pressure is real
	cfg.ControlMaxWindow = 8
	cfg.SpillDir = spillDir
	cfg.SpillAfter = 2
	if err := cfg.Validate(); err != nil {
		return run, nil, err
	}

	pers := &core.DSFPersister{Backend: backend}
	pers.SetTracer(plane.Tracer())
	var mu sync.Mutex
	var firstErr error
	var iterTimes []float64
	var pipeStats []core.PipelineStats
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	err = mpi.Run(resilienceRanks, resilienceRanks, func(comm *mpi.Comm) {
		dep, err := core.Deploy(comm, cfg, nil, core.Options{
			Persister: pers, Scheduler: ctlScheduler{}, Obs: plane,
		})
		if err != nil {
			fail(err)
			return
		}
		if !dep.IsClient() {
			if err := dep.Server.Run(); err != nil {
				fail(err)
			}
			mu.Lock()
			pipeStats = append(pipeStats, dep.Server.PipelineStats())
			mu.Unlock()
			return
		}
		sim, err := cm1.New(dep.ClientComm, params)
		if err != nil {
			fail(err)
			return
		}
		b := cm1.NewDamarisBackend(dep.Client)
		rep, err := cm1.Run(sim, b, resilienceSteps, 1)
		if err != nil {
			fail(err)
		}
		if err := b.Close(); err != nil {
			fail(err)
		}
		mu.Lock()
		iterTimes = append(iterTimes, rep.WriteSeconds...)
		mu.Unlock()
	})
	if err != nil {
		return run, nil, err
	}
	if firstErr != nil {
		return run, nil, firstErr
	}

	var sum float64
	for _, s := range iterTimes {
		sum += s
		if s > run.MaxIterSeconds {
			run.MaxIterSeconds = s
		}
	}
	if len(iterTimes) > 0 {
		run.MeanIterSeconds = sum / float64(len(iterTimes))
	}
	for _, ps := range pipeStats {
		run.Spilled += ps.Spill.Spilled
		run.Replayed += ps.Spill.Replayed
		run.Pending += ps.Spill.Pending
		run.Stranded += ps.Spill.Stranded
		run.DegradedDecisions += ps.Control.DegradedDecisions
		if ps.Window > run.Window {
			run.Window = ps.Window
		}
		if ps.MaxInFlight > run.MaxInFlight {
			run.MaxInFlight = ps.MaxInFlight
		}
	}
	st := backend.Stats()
	run.StoreRetries = st.Retries
	run.StoreBackoffs = st.Backoffs

	tree, err := readStoreTree(backendDir)
	if err != nil {
		return run, nil, err
	}
	return run, tree, nil
}

// readStoreTree reads the durable planes of an obj:// root — blobs/ and
// manifests/ — into a path→bytes map for byte-identity comparison. The tmp/
// staging area is deliberately excluded.
func readStoreTree(root string) (map[string][]byte, error) {
	out := make(map[string][]byte)
	for _, plane := range []string{"blobs", "manifests"} {
		base := filepath.Join(root, plane)
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			out[rel] = b
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func treesIdentical(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

// runHedgeBench runs the middleware against an object store whose primary
// target hangs forever on every write-plane op, with a healthy replica,
// per-put deadlines and hedged puts enabled. The run must complete inside
// the budget with every iteration durable — the hedge path, not the hung
// primary, carries the watermark.
func runHedgeBench() (hedgeResult, error) {
	var res hedgeResult
	primary, err := os.MkdirTemp("", "damaris-hedge-primary")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(primary)
	replica, err := os.MkdirTemp("", "damaris-hedge-replica")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(replica)

	done := make(chan struct{})
	defer close(done) // unpark goroutines stuck in the hung primary
	hung := map[string]bool{store.OpPut: true, store.OpPutRename: true, store.OpCommit: true}
	hang := store.FaultFunc(func(op, name string) error {
		if hung[op] {
			<-done
		}
		return nil
	})
	backend, err := store.NewObjStore(primary, store.Options{
		Replicas:   []string{filepath.Join(replica, "objects")},
		HedgeAfter: 10 * time.Millisecond,
		PutTimeout: 250 * time.Millisecond,
		Fault:      hang,
	})
	if err != nil {
		return res, err
	}
	defer backend.Close()

	params := cm1.DefaultParams(resilienceRanks-1, 1)
	cfg, err := config.ParseString(cm1.ConfigXML(params, 32<<20, "mutex", 1))
	if err != nil {
		return res, err
	}
	cfg.PersistWorkers = 1
	cfg.PersistQueueDepth = 2
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	pers := &core.DSFPersister{Backend: backend}

	var mu sync.Mutex
	var firstErr error
	var pipeStats []core.PipelineStats
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	runErr := make(chan error, 1)
	go func() {
		runErr <- mpi.Run(resilienceRanks, resilienceRanks, func(comm *mpi.Comm) {
			dep, err := core.Deploy(comm, cfg, nil, core.Options{
				Persister: pers, Scheduler: ctlScheduler{},
			})
			if err != nil {
				fail(err)
				return
			}
			if !dep.IsClient() {
				if err := dep.Server.Run(); err != nil {
					fail(err)
				}
				mu.Lock()
				pipeStats = append(pipeStats, dep.Server.PipelineStats())
				mu.Unlock()
				return
			}
			sim, err := cm1.New(dep.ClientComm, params)
			if err != nil {
				fail(err)
				return
			}
			b := cm1.NewDamarisBackend(dep.Client)
			if _, err := cm1.Run(sim, b, hedgeBenchSteps, 1); err != nil {
				fail(err)
			}
			if err := b.Close(); err != nil {
				fail(err)
			}
		})
	}()
	select {
	case err := <-runErr:
		if err != nil {
			return res, err
		}
	case <-time.After(hedgeBenchBudget):
		// The hung primary stalled the run — exactly what hedging exists to
		// prevent. Report the failure; the stuck world is abandoned.
		return res, fmt.Errorf("hedge run did not complete within %v: hung primary stalled the durability watermark", hedgeBenchBudget)
	}
	if firstErr != nil {
		return res, firstErr
	}
	res.Completed = true
	for _, ps := range pipeStats {
		res.Iterations += ps.Completed
		res.Failures += ps.Failures
	}
	st := backend.Stats()
	res.Hedges = st.Hedges
	res.HedgeWins = st.HedgeWins
	res.PutTimeouts = st.PutTimeouts
	objs, err := backend.Objects()
	if err != nil {
		return res, err
	}
	res.DurableObjects = len(objs)
	return res, nil
}

// runResilienceBench executes the overload-resilience gates end to end —
// healthy vs brownout spill runs with byte-identity and bounded stall, then
// the hung-primary hedge run — and writes BENCH_resilience.json. Any failed
// gate is an error: the bench doubles as the regression harness for
// degraded-mode persistence.
func runResilienceBench(outPath string) error {
	// Healthy baseline: a constant put latency the write-behind pipeline
	// absorbs. It is deliberately comparable to the client compute phase so
	// the 5x brownout genuinely outruns the client cadence and forces
	// sustained backpressure.
	const baseLat = 10 * time.Millisecond
	healthy, healthyTree, err := runResilienceOnce("healthy", store.Latency(baseLat, store.OpPut), nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s iter mean=%.2gs max=%.2gs spilled=%d replayed=%d retries=%d\n",
		healthy.Scenario, healthy.MeanIterSeconds, healthy.MaxIterSeconds,
		healthy.Spilled, healthy.Replayed, healthy.StoreRetries)

	// Brownout: 5x the baseline latency plus a 20% deterministic put error
	// rate, at peak intensity from the start of the run (the ramp's midpoint
	// is placed at t0).
	brownFault := store.Chain(
		store.Latency(baseLat, store.OpPut),
		store.Brownout(time.Now().Add(-15*time.Second), 30*time.Second,
			5*baseLat, 0.2, store.OpPut),
	)
	brownout, brownTree, err := runResilienceOnce("brownout", brownFault, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s iter mean=%.2gs max=%.2gs spilled=%d replayed=%d degraded=%d retries=%d backoffs=%d window=%d depth=%d\n",
		brownout.Scenario, brownout.MeanIterSeconds, brownout.MaxIterSeconds,
		brownout.Spilled, brownout.Replayed, brownout.DegradedDecisions,
		brownout.StoreRetries, brownout.StoreBackoffs, brownout.Window, brownout.MaxInFlight)

	base := healthy.MaxIterSeconds
	if base < stallBase {
		base = stallBase
	}
	rep := resilienceReport{
		Healthy:        healthy,
		Brownout:       brownout,
		StallFactor:    brownout.MaxIterSeconds / base,
		StallBound:     25,
		BytesIdentical: treesIdentical(healthyTree, brownTree) && len(healthyTree) > 0,
		StoredFiles:    len(brownTree),
	}
	fmt.Printf("stall factor %.1fx (bound %.0fx); %d stored files byte-identical=%v\n",
		rep.StallFactor, rep.StallBound, rep.StoredFiles, rep.BytesIdentical)

	hedge, err := runHedgeBench()
	if err != nil {
		return err
	}
	rep.Hedge = hedge
	fmt.Printf("hedge: %d iterations durable, %d hedges (%d wins), %d put timeouts, %d objects\n",
		hedge.Iterations, hedge.Hedges, hedge.HedgeWins, hedge.PutTimeouts, hedge.DurableObjects)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	// Gates.
	if brownout.Spilled == 0 {
		return fmt.Errorf("brownout never engaged the scratch spill (see %s)", outPath)
	}
	if brownout.Replayed != brownout.Spilled || brownout.Pending != 0 || brownout.Stranded != 0 {
		return fmt.Errorf("spill backlog not fully replayed: spilled=%d replayed=%d pending=%d stranded=%d (see %s)",
			brownout.Spilled, brownout.Replayed, brownout.Pending, brownout.Stranded, outPath)
	}
	if brownout.DegradedDecisions == 0 {
		return fmt.Errorf("tuner never entered degraded mode while the spill backlog drained (see %s)", outPath)
	}
	if rep.StallFactor > rep.StallBound {
		return fmt.Errorf("brownout stall factor %.1fx exceeds bound %.0fx (see %s)",
			rep.StallFactor, rep.StallBound, outPath)
	}
	if !rep.BytesIdentical {
		return fmt.Errorf("brownout run's stored bytes differ from the healthy run's (see %s)", outPath)
	}
	if !hedge.Completed || hedge.Failures > 0 {
		return fmt.Errorf("hedge run failed: completed=%v failures=%d (see %s)",
			hedge.Completed, hedge.Failures, outPath)
	}
	if hedge.HedgeWins == 0 {
		return fmt.Errorf("hung primary produced no hedge wins (see %s)", outPath)
	}
	return nil
}
