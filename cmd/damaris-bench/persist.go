package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/layout"
	"damaris/internal/metadata"
	"damaris/internal/mpi"
)

// persistBenchResult is one row of BENCH_persist.json — the persist-path
// throughput/allocation figures tracked across PRs.
type persistBenchResult struct {
	Name        string  `json:"name"`
	Workers     int     `json:"encode_workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// persistWorkload builds the benchmark iteration: 8 smooth float32 chunks of
// 512 KiB each, ShuffleGzip-encoded — the multi-chunk persist the encode
// pool is built for.
func persistWorkload() ([]*metadata.Entry, int64) {
	lay := layout.MustNew(layout.Float32, 128<<10)
	var entries []*metadata.Entry
	var total int64
	for src := 0; src < 8; src++ {
		xs := make([]float32, 128<<10)
		for i := range xs {
			xs[i] = 280 + float32(src) + 8*float32(math.Sin(float64(i)/600))
		}
		data := mpi.Float32sToBytes(xs)
		total += int64(len(data))
		entries = append(entries, &metadata.Entry{
			Key:    metadata.Key{Name: "theta", Source: src},
			Layout: lay,
			Inline: data,
		})
	}
	return entries, total
}

// runPersistBench benchmarks the DSF persist path at several encode worker
// counts and writes the results to outPath as JSON (and to stdout).
func runPersistBench(outPath string) error {
	entries, total := persistWorkload()
	var results []persistBenchResult
	for _, workers := range []int{0, 1, 2, 4} {
		workers := workers
		r := testing.Benchmark(func(b *testing.B) {
			dir, err := os.MkdirTemp("", "damaris-bench")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			pool := dsf.NewEncodePool(workers)
			defer pool.Close()
			pers := &core.DSFPersister{Dir: dir, Codec: dsf.ShuffleGzip, GzipLevel: dsf.DefaultGzipLevel}
			pers.SetEncodePool(pool)
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pers.Persist(int64(i%64), entries); err != nil {
					b.Fatal(err)
				}
			}
		})
		res := persistBenchResult{
			Name:        fmt.Sprintf("persist_shufflegzip_encode%d", workers),
			Workers:     workers,
			NsPerOp:     r.NsPerOp(),
			MBPerS:      float64(total) / 1e6 / (float64(r.NsPerOp()) / 1e9),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		results = append(results, res)
		fmt.Printf("%-32s %12d ns/op %8.1f MB/s %6d allocs/op\n",
			res.Name, res.NsPerOp, res.MBPerS, res.AllocsPerOp)
	}
	out, err := json.MarshalIndent(struct {
		Benchmarks []persistBenchResult `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
