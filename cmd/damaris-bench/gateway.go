package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/gateway"
	"damaris/internal/store"
)

// gatewayBenchResult is one row of BENCH_gateway.json.
type gatewayBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// gatewayBenchChecks records what the bench run proves alongside the
// numbers: the part cache must turn warm full-object reads into zero
// backend Gets, and the cached path must serve the same bytes as the
// store's own serial reader.
type gatewayBenchChecks struct {
	ColdNsPerOp     int64   `json:"cold_ns_per_op"`
	WarmNsPerOp     int64   `json:"warm_ns_per_op"`
	ColdWarmRatio   float64 `json:"cold_warm_ratio"`
	PartHitRate     float64 `json:"part_hit_rate"`
	TOCHitRate      float64 `json:"toc_hit_rate"`
	WarmBackendGets int64   `json:"warm_backend_gets"`
	WarmZeroGets    bool    `json:"warm_zero_gets"`
	ByteIdentical   bool    `json:"byte_identical_with_serial"`
}

// runGatewayBench measures the read gateway's cold and warm full-object
// read paths over a content-addressed store and writes BENCH_gateway.json.
// A warm read that still touches the backend, or a byte mismatch with the
// serial reader, is an error: the bench doubles as the cache regression
// gate.
func runGatewayBench(outPath string) error {
	const partSize = 256 << 10
	entries, _ := persistWorkload()

	dir, err := os.MkdirTemp("", "damaris-gateway-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	backend, err := store.NewObjStore(dir, store.Options{PartSize: partSize})
	if err != nil {
		return err
	}
	defer backend.Close()
	pers := &core.DSFPersister{Backend: backend, Codec: dsf.None}
	for it := int64(0); it < 4; it++ {
		if err := pers.Persist(it, entries); err != nil {
			return err
		}
	}
	object := pers.Files()[0]
	serial, err := readObject(backend, object)
	if err != nil {
		return err
	}
	size := int64(len(serial))

	var checks gatewayBenchChecks

	// Cold: fresh gateway (empty TOC and part caches) per sample, so every
	// read pays the manifest decode and every part fetch.
	const coldSamples = 10
	var coldTotal time.Duration
	for i := 0; i < coldSamples; i++ {
		g, err := gateway.New(gateway.Config{Backend: backend})
		if err != nil {
			return err
		}
		start := time.Now()
		got, err := g.ReadRange(object, 0, size)
		coldTotal += time.Since(start)
		if err != nil {
			return err
		}
		if i == 0 {
			checks.ByteIdentical = bytes.Equal(got, serial)
		}
	}
	checks.ColdNsPerOp = coldTotal.Nanoseconds() / coldSamples

	// Warm: one gateway, caches populated, then the measured loop. The
	// same instance reports the hit rates and the Gets delta.
	g, err := gateway.New(gateway.Config{Backend: backend})
	if err != nil {
		return err
	}
	if _, err := g.ReadRange(object, 0, size); err != nil {
		return err
	}
	getsBefore := g.Stats().BackendGets
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.ReadRange(object, 0, size); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	warm := gatewayBenchResult{
		Name:        "gateway_read_warm",
		NsPerOp:     r.NsPerOp(),
		MBPerS:      float64(size) / 1e6 / (float64(r.NsPerOp()) / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}

	s := g.Stats()
	checks.WarmNsPerOp = r.NsPerOp()
	if r.NsPerOp() > 0 {
		checks.ColdWarmRatio = float64(checks.ColdNsPerOp) / float64(r.NsPerOp())
	}
	checks.PartHitRate = s.PartHitRate()
	checks.TOCHitRate = s.TOCHitRate()
	checks.WarmBackendGets = s.BackendGets - getsBefore
	checks.WarmZeroGets = checks.WarmBackendGets == 0

	fmt.Printf("%-24s %12d ns/op %8.1f MB/s %6d allocs/op\n",
		warm.Name, warm.NsPerOp, warm.MBPerS, warm.AllocsPerOp)
	fmt.Printf("checks: cold/warm=%.1fx part_hit_rate=%.3f toc_hit_rate=%.3f warm_backend_gets=%d byte_identical=%v\n",
		checks.ColdWarmRatio, checks.PartHitRate, checks.TOCHitRate,
		checks.WarmBackendGets, checks.ByteIdentical)

	if !checks.WarmZeroGets {
		return fmt.Errorf("gateway-bench: warm reads reached the backend %d times, want 0", checks.WarmBackendGets)
	}
	if !checks.ByteIdentical {
		return fmt.Errorf("gateway-bench: gateway bytes differ from the serial reader")
	}

	out, err := json.MarshalIndent(struct {
		Benchmarks []gatewayBenchResult `json:"benchmarks"`
		Checks     gatewayBenchChecks   `json:"checks"`
	}{[]gatewayBenchResult{warm}, checks}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}
