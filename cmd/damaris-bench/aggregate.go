package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"damaris/internal/aggregate"
	"damaris/internal/cluster"
	"damaris/internal/core"
	"damaris/internal/dsf"
	"damaris/internal/iostrat"
	"damaris/internal/metadata"
	"damaris/internal/stats"
	"damaris/internal/store"
)

// aggBenchResult is one row of BENCH_aggregate.json's real-path figures. Per
// the repo's bench policy (single-CPU dev boxes), the tracked signals are
// allocations and determinism, not parallel speedups.
type aggBenchResult struct {
	Name        string  `json:"name"`
	Members     int     `json:"members"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// aggBenchChecks are the hard correctness assertions the bench doubles as a
// regression gate for.
type aggBenchChecks struct {
	// DeterministicObjects: merged objects are byte-identical across fan-in
	// arrival orders.
	DeterministicObjects bool `json:"deterministic_objects"`
	// OneObjectPerEpoch: each epoch commits exactly one object.
	OneObjectPerEpoch bool `json:"one_object_per_epoch"`
	// ArrivalOrders is how many distinct interleavings were compared.
	ArrivalOrders int `json:"arrival_orders"`
}

// aggParity records the aggregation-off guard: with the tier disabled, the
// persist path's allocation figure must sit within noise of what
// BENCH_store.json recorded.
type aggParity struct {
	StoreAllocsPerOp int64   `json:"store_allocs_per_op"`
	OffAllocsPerOp   int64   `json:"off_allocs_per_op"`
	ToleranceFrac    float64 `json:"tolerance_frac"`
	WithinNoise      bool    `json:"within_noise"`
	Compared         bool    `json:"compared"` // false when BENCH_store.json was absent
}

// aggSimCurve is one point of the aggregation-aware throughput curves over
// the paper's three platforms.
type aggSimCurve struct {
	Platform      string  `json:"platform"`
	Mode          string  `json:"mode"`
	Cores         int     `json:"cores"`
	MeanBps       float64 `json:"mean_bps"`
	ClientSeconds float64 `json:"client_seconds"`
}

// splitWorkload splits the shared persist workload across members.
func splitWorkload(members int) ([][]*metadata.Entry, int64) {
	entries, total := persistWorkload()
	per := len(entries) / members
	out := make([][]*metadata.Entry, members)
	for m := 0; m < members; m++ {
		out[m] = entries[m*per : (m+1)*per]
	}
	return out, total
}

// benchMerge measures one merged epoch end to end: every member submits its
// contribution and the epoch commits through a file backend.
func benchMerge(members int) (aggBenchResult, error) {
	parts, total := splitWorkload(members)
	var setupErr error
	r := testing.Benchmark(func(b *testing.B) {
		dir, err := os.MkdirTemp("", "damaris-agg-bench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		backend, err := store.NewFileStore(dir, store.Options{})
		if err != nil {
			setupErr = err
			b.Fatal(err)
		}
		pers := &core.DSFPersister{Backend: backend, Codec: dsf.None}
		ids := make([]int, members)
		for i := range ids {
			ids[i] = i
		}
		agg, err := aggregate.New(aggregate.Config{
			Mode:    "core",
			Members: ids,
			Sink: &aggregate.StoreSink{
				Writer:     pers,
				ObjectName: func(e int64) string { return fmt.Sprintf("node0000_it%06d.dsf", e%64) },
				MemberAttr: "servers",
				Mode:       "core",
			},
		})
		if err != nil {
			setupErr = err
			b.Fatal(err)
		}
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		chans := make([]<-chan error, members)
		for i := 0; i < b.N; i++ {
			for m := 0; m < members; m++ {
				chans[m] = agg.Submit(m, int64(i), parts[m])
			}
			for _, ch := range chans {
				if err := <-ch; err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		for _, id := range ids {
			agg.MemberDone(id)
		}
		if err := agg.Close(); err != nil {
			b.Fatal(err)
		}
	})
	if setupErr != nil {
		return aggBenchResult{}, setupErr
	}
	return aggBenchResult{
		Name:        fmt.Sprintf("aggregate_merge_m%d", members),
		Members:     members,
		NsPerOp:     r.NsPerOp(),
		MBPerS:      float64(total) / 1e6 / (float64(r.NsPerOp()) / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runAggChecks proves arrival-order determinism on the real merge path: the
// same per-member contributions, submitted under different interleavings,
// must commit byte-identical objects, exactly one per epoch.
func runAggChecks() (aggBenchChecks, error) {
	const members = 4
	const epochs = 3
	checks := aggBenchChecks{DeterministicObjects: true, OneObjectPerEpoch: true}
	parts, _ := splitWorkload(members)

	runOnce := func(order []int) (map[string][]byte, error) {
		dir, err := os.MkdirTemp("", "damaris-agg-checks")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		backend, err := store.NewFileStore(dir, store.Options{})
		if err != nil {
			return nil, err
		}
		pers := &core.DSFPersister{Backend: backend, Codec: dsf.None}
		ids := make([]int, members)
		for i := range ids {
			ids[i] = i
		}
		agg, err := aggregate.New(aggregate.Config{
			Mode:    "core",
			Members: ids,
			Sink: &aggregate.StoreSink{
				Writer:     pers,
				ObjectName: func(e int64) string { return fmt.Sprintf("node0000_it%06d.dsf", e) },
				MemberAttr: "servers",
				Mode:       "core",
			},
		})
		if err != nil {
			return nil, err
		}
		// Members run concurrently, released in the given order — the
		// interleaving the fan-in ring actually sees varies with it.
		starts := make([]chan struct{}, members)
		for i := range starts {
			starts[i] = make(chan struct{})
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for m := 0; m < members; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				<-starts[m]
				for e := int64(0); e < epochs; e++ {
					if err := <-agg.Submit(m, e, parts[m]); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
				agg.MemberDone(m)
			}(m)
		}
		for _, m := range order {
			close(starts[m])
		}
		wg.Wait()
		if err := agg.Close(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		objs, err := backend.Objects()
		if err != nil {
			return nil, err
		}
		out := make(map[string][]byte, len(objs))
		for _, o := range objs {
			b, err := os.ReadFile(backend.Path(o.Name))
			if err != nil {
				return nil, err
			}
			out[o.Name] = b
		}
		return out, nil
	}

	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	checks.ArrivalOrders = len(orders)
	var ref map[string][]byte
	for _, order := range orders {
		objs, err := runOnce(order)
		if err != nil {
			return checks, err
		}
		if len(objs) != epochs {
			checks.OneObjectPerEpoch = false
		}
		if ref == nil {
			ref = objs
			continue
		}
		for name, b := range ref {
			if !bytes.Equal(objs[name], b) {
				checks.DeterministicObjects = false
			}
		}
	}
	return checks, nil
}

// runAggParity re-measures the aggregation-off persist path and compares
// its allocation figure against BENCH_store.json: turning the tier off must
// leave the plain store path untouched.
func runAggParity(storeReportPath string) (aggParity, error) {
	p := aggParity{ToleranceFrac: 0.25}
	off, err := benchPersist("persist_filestore_aggoff", func(dir string) (store.Backend, error) {
		return store.NewFileStore(dir, store.Options{})
	}, 0, 0)
	if err != nil {
		return p, err
	}
	p.OffAllocsPerOp = off.AllocsPerOp

	raw, err := os.ReadFile(storeReportPath)
	if err != nil {
		if os.IsNotExist(err) {
			// No baseline to compare against (store bench not run): report
			// the figure without a verdict.
			p.WithinNoise = true
			return p, nil
		}
		return p, err
	}
	var rep struct {
		Benchmarks []storeBenchResult `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return p, fmt.Errorf("parse %s: %w", storeReportPath, err)
	}
	for _, b := range rep.Benchmarks {
		if b.Name == "persist_filestore" {
			p.Compared = true
			p.StoreAllocsPerOp = b.AllocsPerOp
			diff := p.OffAllocsPerOp - b.AllocsPerOp
			if diff < 0 {
				diff = -diff
			}
			slack := int64(float64(b.AllocsPerOp)*p.ToleranceFrac) + 16
			p.WithinNoise = diff <= slack
			return p, nil
		}
	}
	p.WithinNoise = true // baseline row absent: nothing to compare
	return p, nil
}

// runAggSimCurves produces the aggregation-aware throughput curves over the
// paper's three simulated platforms.
func runAggSimCurves() ([]aggSimCurve, error) {
	var out []aggSimCurve
	for _, plat := range cluster.All() {
		for _, scale := range []int{8, 32} {
			cores := scale * plat.CoresPerNode
			if cores > plat.MaxCores {
				continue
			}
			for _, mode := range []string{"off", "core", "node"} {
				rs, err := iostrat.Phases("damaris", plat, iostrat.Options{
					Cores:            cores,
					Seed:             42,
					DedicatedPerNode: 2,
					AggregateMode:    mode,
				}, 3)
				if err != nil {
					return nil, err
				}
				out = append(out, aggSimCurve{
					Platform:      plat.Name,
					Mode:          mode,
					Cores:         cores,
					MeanBps:       stats.Mean(iostrat.AggregateBps(rs)),
					ClientSeconds: stats.Mean(iostrat.ClientSeconds(rs)),
				})
			}
		}
	}
	return out, nil
}

// runAggregateBench benchmarks the aggregation layer, proves its
// determinism, guards the aggregation-off store figures, simulates the
// throughput curves, and writes BENCH_aggregate.json. Any failed check is
// an error — the bench doubles as the regression gate.
func runAggregateBench(outPath, storeReportPath string) error {
	var results []aggBenchResult
	for _, members := range []int{1, 2, 4} {
		r, err := benchMerge(members)
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("%-24s %12d ns/op %8.1f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerS, r.AllocsPerOp)
	}

	checks, err := runAggChecks()
	if err != nil {
		return err
	}
	fmt.Printf("checks: deterministic_objects=%v one_object_per_epoch=%v over %d arrival orders\n",
		checks.DeterministicObjects, checks.OneObjectPerEpoch, checks.ArrivalOrders)

	parity, err := runAggParity(storeReportPath)
	if err != nil {
		return err
	}
	if parity.Compared {
		fmt.Printf("parity: aggregate-off persist %d allocs/op vs BENCH_store %d (within %.0f%%: %v)\n",
			parity.OffAllocsPerOp, parity.StoreAllocsPerOp, 100*parity.ToleranceFrac, parity.WithinNoise)
	} else {
		fmt.Printf("parity: aggregate-off persist %d allocs/op (no %s baseline to compare)\n",
			parity.OffAllocsPerOp, storeReportPath)
	}

	curves, err := runAggSimCurves()
	if err != nil {
		return err
	}
	for _, c := range curves {
		fmt.Printf("sim %-10s %-5s %6d cores: %8.2f GB/s apparent, %6.3fs client phase\n",
			c.Platform, c.Mode, c.Cores, c.MeanBps/1e9, c.ClientSeconds)
	}

	out, err := json.MarshalIndent(struct {
		Benchmarks []aggBenchResult `json:"benchmarks"`
		Checks     aggBenchChecks   `json:"checks"`
		Parity     aggParity        `json:"parity"`
		SimCurves  []aggSimCurve    `json:"sim_curves"`
	}{results, checks, parity, curves}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if !checks.DeterministicObjects || !checks.OneObjectPerEpoch {
		return fmt.Errorf("aggregation determinism checks failed (see %s)", outPath)
	}
	if !parity.WithinNoise {
		return fmt.Errorf("aggregation-off store figures drifted outside noise (see %s)", outPath)
	}
	return nil
}
